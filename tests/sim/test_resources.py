"""Unit tests for resources and usage metering."""

import pytest

from repro.sim import Delay, ResourceError, Simulator, Use
from repro.sim.resources import Resource, UsageMeter


def test_meter_single_interval_single_bucket():
    meter = UsageMeter(bucket_seconds=60.0)
    meter.add(start=10.0, duration=5.0, tag="user")
    assert meter.busy_seconds("user", 0) == pytest.approx(5.0)
    assert meter.busy_seconds("user", 1) == 0.0


def test_meter_interval_split_across_buckets():
    meter = UsageMeter(bucket_seconds=60.0)
    meter.add(start=50.0, duration=20.0, tag="user")
    assert meter.busy_seconds("user", 0) == pytest.approx(10.0)
    assert meter.busy_seconds("user", 1) == pytest.approx(10.0)


def test_meter_interval_spanning_many_buckets():
    meter = UsageMeter(bucket_seconds=60.0)
    meter.add(start=0.0, duration=180.0, tag="io")
    for minute in range(3):
        assert meter.busy_seconds("io", minute) == pytest.approx(60.0)


def test_meter_zero_duration_ignored():
    meter = UsageMeter()
    meter.add(start=5.0, duration=0.0, tag="user")
    assert meter.tags() == []


def test_meter_negative_duration_raises():
    meter = UsageMeter()
    with pytest.raises(ResourceError):
        meter.add(start=0.0, duration=-1.0, tag="user")


def test_meter_bad_bucket_width_raises():
    with pytest.raises(ResourceError):
        UsageMeter(bucket_seconds=0.0)


def test_meter_total_seconds():
    meter = UsageMeter()
    meter.add(0.0, 30.0, "user")
    meter.add(100.0, 20.0, "user")
    assert meter.total_seconds("user") == pytest.approx(50.0)
    assert meter.total_seconds("missing") == 0.0


def test_utilization_fractions_and_idle():
    meter = UsageMeter(bucket_seconds=60.0)
    meter.add(0.0, 30.0, "user")  # half a core for one minute
    samples = meter.utilization(capacity=1)
    assert len(samples) == 1
    assert samples[0].fraction("user") == pytest.approx(0.5)
    assert samples[0].idle == pytest.approx(0.5)


def test_utilization_multi_core_capacity():
    meter = UsageMeter(bucket_seconds=60.0)
    meter.add(0.0, 60.0, "user")
    samples = meter.utilization(capacity=4)
    assert samples[0].fraction("user") == pytest.approx(0.25)
    assert samples[0].idle == pytest.approx(0.75)


def test_utilization_includes_empty_buckets_to_horizon():
    meter = UsageMeter(bucket_seconds=60.0)
    meter.add(0.0, 10.0, "user")
    samples = meter.utilization(capacity=1, until=300.0)
    assert len(samples) == 5
    assert samples[4].idle == pytest.approx(1.0)


def test_utilization_bad_capacity_raises():
    with pytest.raises(ResourceError):
        UsageMeter().utilization(capacity=0)


def test_resource_parallel_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=2, name="cores")
    done = []

    def worker(label):
        yield Use(resource, 4.0)
        done.append((label, sim.now))

    for label in ("a", "b", "c"):
        sim.spawn(worker(label))
    sim.run()
    # a and b run together; c waits for a free server.
    assert done == [("a", 4.0), ("b", 4.0), ("c", 8.0)]


def test_resource_fifo_ordering():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def worker(label, start_delay):
        yield Delay(start_delay)
        yield Use(resource, 1.0)
        order.append(label)

    sim.spawn(worker("first", 0.0))
    sim.spawn(worker("second", 0.1))
    sim.spawn(worker("third", 0.2))
    sim.run()
    assert order == ["first", "second", "third"]


def test_resource_zero_capacity_raises():
    sim = Simulator()
    with pytest.raises(ResourceError):
        Resource(sim, capacity=0)


def test_resource_negative_duration_fails_process():
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def worker():
        yield Use(resource, -1.0)

    process = sim.spawn(worker())
    sim.run()
    assert isinstance(process.error, ResourceError)


def test_resource_meters_busy_time_by_tag():
    sim = Simulator()
    meter = UsageMeter(bucket_seconds=60.0)
    resource = Resource(sim, capacity=1, meter=meter)

    def worker():
        yield Use(resource, 10.0, "user")
        yield Use(resource, 5.0, "io")

    sim.spawn(worker())
    sim.run()
    assert meter.total_seconds("user") == pytest.approx(10.0)
    assert meter.total_seconds("io") == pytest.approx(5.0)


def test_resource_busy_and_queued_counters():
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def worker():
        yield Use(resource, 10.0)

    sim.spawn(worker())
    sim.spawn(worker())
    sim.run(until=1.0)
    assert resource.busy == 1
    assert resource.queued == 1
    sim.run()
    assert resource.busy == 0
    assert resource.queued == 0


def test_cancelled_process_skipped_in_queue():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    done = []

    def holder():
        yield Use(resource, 5.0)
        done.append("holder")

    def waiter():
        yield Use(resource, 5.0)
        done.append("waiter")

    sim.spawn(holder())
    waiting = sim.spawn(waiter())
    sim.run(until=1.0)
    waiting.cancel()
    sim.run()
    assert done == ["holder"]
