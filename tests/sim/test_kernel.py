"""Unit tests for the simulator and the process/effect model."""

import pytest

from repro.sim import (
    Delay,
    Join,
    ProcessError,
    SchedulingError,
    Signal,
    SimulationLimitExceeded,
    Simulator,
    Spawn,
    Use,
    Wait,
)
from repro.sim.resources import Resource


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_callback_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_schedule_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_raises():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_includes_boundary_events():
    sim = Simulator()
    seen = []
    sim.schedule(4.0, lambda: seen.append("boundary"))
    sim.run(until=4.0)
    assert seen == ["boundary"]


def test_max_events_guard():
    sim = Simulator()

    def rearm():
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(SimulationLimitExceeded):
        sim.run(max_events=100)


def test_process_delay_sequence():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield Delay(3.0)
        trace.append(("mid", sim.now))
        yield Delay(2.0)
        trace.append(("end", sim.now))

    sim.spawn(proc())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 3.0), ("end", 5.0)]


def test_process_result_captured():
    sim = Simulator()

    def proc():
        yield Delay(1.0)
        return 42

    process = sim.spawn(proc())
    sim.run()
    assert process.done
    assert process.result == 42


def test_process_error_captured():
    sim = Simulator()

    def proc():
        yield Delay(1.0)
        raise ValueError("boom")

    process = sim.spawn(proc())
    sim.run()
    assert process.done
    assert isinstance(process.error, ValueError)


def test_yielding_non_effect_fails_process():
    sim = Simulator()

    def proc():
        yield "not an effect"

    process = sim.spawn(proc())
    sim.run()
    assert isinstance(process.error, ProcessError)


def test_spawn_effect_returns_child():
    sim = Simulator()
    seen = {}

    def child():
        yield Delay(1.0)
        return "child-result"

    def parent():
        handle = yield Spawn(child())
        result = yield Join(handle)
        seen["result"] = result

    sim.spawn(parent())
    sim.run()
    assert seen["result"] == "child-result"


def test_join_propagates_child_exception():
    sim = Simulator()

    def child():
        yield Delay(1.0)
        raise RuntimeError("child failed")

    def parent():
        handle = yield Spawn(child())
        yield Join(handle)

    process = sim.spawn(parent())
    sim.run()
    assert isinstance(process.error, RuntimeError)


def test_join_already_finished_child():
    sim = Simulator()
    seen = {}

    def child():
        yield Delay(0.5)
        return "early"

    def parent(handle):
        yield Delay(5.0)
        seen["result"] = (yield Join(handle))

    handle = sim.spawn(child())
    sim.spawn(parent(handle))
    sim.run()
    assert seen["result"] == "early"


def test_wait_on_signal():
    sim = Simulator()
    signal = Signal("go")
    seen = []

    def waiter():
        fired, value = yield Wait(signal)
        seen.append((fired, value, sim.now))

    sim.spawn(waiter())
    sim.schedule(7.0, signal.fire, "payload")
    sim.run()
    assert seen == [(True, "payload", 7.0)]


def test_wait_on_already_fired_signal_resumes_immediately():
    sim = Simulator()
    signal = Signal("done")
    signal.fire("v")
    seen = []

    def waiter():
        fired, value = yield Wait(signal)
        seen.append((fired, value, sim.now))

    sim.spawn(waiter())
    sim.run()
    assert seen == [(True, "v", 0.0)]


def test_wait_timeout_elapses():
    sim = Simulator()
    signal = Signal("never")
    seen = []

    def waiter():
        fired, value = yield Wait(signal, timeout=3.0)
        seen.append((fired, value, sim.now))

    sim.spawn(waiter())
    sim.run()
    assert seen == [(False, None, 3.0)]


def test_wait_signal_beats_timeout():
    sim = Simulator()
    signal = Signal("fast")
    seen = []

    def waiter():
        fired, value = yield Wait(signal, timeout=10.0)
        seen.append((fired, value, sim.now))

    sim.spawn(waiter())
    sim.schedule(2.0, signal.fire, "won")
    sim.run()
    assert seen == [(True, "won", 2.0)]
    assert sim.now == 2.0  # the timeout event was cancelled


def test_signal_fire_twice_raises():
    signal = Signal("once")
    signal.fire()
    with pytest.raises(ProcessError):
        signal.fire()


def test_cancel_stops_process():
    sim = Simulator()
    trace = []

    def proc():
        trace.append("a")
        yield Delay(5.0)
        trace.append("b")

    process = sim.spawn(proc())
    sim.run(until=1.0)
    process.cancel()
    sim.run()
    assert trace == ["a"]
    assert process.cancelled and process.done


def test_cancel_finished_process_is_noop():
    sim = Simulator()

    def proc():
        yield Delay(1.0)
        return 1

    process = sim.spawn(proc())
    sim.run()
    process.cancel()
    assert not process.cancelled  # finished naturally first


def test_completion_signal_fires_on_finish():
    sim = Simulator()

    def proc():
        yield Delay(1.0)
        return "done"

    process = sim.spawn(proc())
    sim.run()
    assert process.completion.fired
    assert process.completion.value == "done"


def test_use_effect_serialises_on_unit_resource():
    sim = Simulator()
    resource = Resource(sim, capacity=1, name="lock")
    finish_times = []

    def worker():
        yield Use(resource, 2.0)
        finish_times.append(sim.now)

    for _ in range(3):
        sim.spawn(worker())
    sim.run()
    assert finish_times == [2.0, 4.0, 6.0]


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_deterministic_rng_streams():
    first = Simulator(seed=99)
    second = Simulator(seed=99)
    draws_a = [first.rng.stream("x").random() for _ in range(5)]
    draws_b = [second.rng.stream("x").random() for _ in range(5)]
    assert draws_a == draws_b
    assert first.rng.stream("x") is first.rng.stream("x")
    assert draws_a != [first.rng.stream("y").random() for _ in range(5)]
