"""Property-based tests for simulation-kernel invariants."""

from hypothesis import given, settings, strategies as st

from repro.sim import Delay, Simulator, Use
from repro.sim.resources import Resource, UsageMeter


@given(st.lists(st.tuples(
    st.floats(min_value=0.0, max_value=100.0),   # start offset
    st.floats(min_value=0.001, max_value=50.0),  # duration
), min_size=1, max_size=30))
@settings(max_examples=100)
def test_meter_conserves_busy_time(intervals):
    """Total metered time equals the sum of recorded durations,
    regardless of how intervals split across buckets."""
    meter = UsageMeter(bucket_seconds=60.0)
    total = 0.0
    for start, duration in intervals:
        meter.add(start, duration, "user")
        total += duration
    assert abs(meter.total_seconds("user") - total) < 1e-6


@given(st.lists(st.floats(min_value=0.01, max_value=20.0),
                min_size=1, max_size=25),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=100)
def test_resource_work_conservation(durations, capacity):
    """All submitted work completes, and makespan is bounded by
    work/capacity (lower) and serial execution (upper)."""
    sim = Simulator()
    meter = UsageMeter()
    resource = Resource(sim, capacity=capacity, meter=meter)
    done = []

    def worker(duration):
        yield Use(resource, duration, "busy")
        done.append(duration)

    for duration in durations:
        sim.spawn(worker(duration))
    sim.run()
    assert len(done) == len(durations)
    total = sum(durations)
    assert abs(meter.total_seconds("busy") - total) < 1e-6
    assert sim.now >= total / capacity - 1e-9
    assert sim.now <= total + 1e-9
    assert resource.busy == 0
    assert resource.queued == 0


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0),
                min_size=1, max_size=40))
@settings(max_examples=100)
def test_clock_is_monotone_under_any_schedule(delays):
    """Events fire in non-decreasing time order regardless of how they
    were scheduled."""
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.floats(min_value=0.001, max_value=10.0),
                min_size=1, max_size=20))
@settings(max_examples=50)
def test_unit_resource_serialises_exactly(durations):
    """A capacity-1 resource finishes work back-to-back: the makespan is
    exactly the sum of durations (FIFO, no gaps, no overlap)."""
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def worker(duration):
        yield Use(resource, duration)

    for duration in durations:
        sim.spawn(worker(duration))
    sim.run()
    assert abs(sim.now - sum(durations)) < 1e-6


@given(st.integers(min_value=0, max_value=2**32))
@settings(max_examples=50)
def test_rng_streams_are_stable_and_independent(seed):
    a1 = Simulator(seed=seed).rng.stream("alpha").random()
    a2 = Simulator(seed=seed).rng.stream("alpha").random()
    b = Simulator(seed=seed).rng.stream("beta").random()
    assert a1 == a2
    assert a1 != b  # different names yield different draws (w.h.p.)
