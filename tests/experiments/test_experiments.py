"""Tests for the experiment harness (fast paths and structure).

The heavy experiments run in benchmarks/; these tests exercise the
experiment machinery itself: dataflow traces (fast), the codebase
harness, scaled-down sweeps, and the CLI plumbing.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.codebase import measure_components, run as run_codebase
from repro.experiments.common import (
    clear_sweep_cache,
    run_throughput_sweep,
    vm_cycle_rate,
)
from repro.experiments.dataflow import run_tab01, run_tab02
from repro.sim.monitor import EventLog


def test_all_experiments_registered():
    expected = {
        "tab01", "tab02", "sec4231", "fig07", "fig08", "fig09", "fig10",
        "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "sec532",
    }
    assert set(ALL_EXPERIMENTS) == expected


def test_tab01_matches_paper():
    result = run_tab01()
    assert result.all_checks_pass(), result.failed_checks()


def test_tab02_matches_paper():
    result = run_tab02()
    assert result.all_checks_pass(), result.failed_checks()


def test_codebase_harness_measures_repo():
    totals = measure_components()
    assert totals["condor-common"] > 1000
    assert totals["condorj2-common"] > 1000
    assert totals["shared-substrate"] > 1000
    result = run_codebase()
    assert result.all_checks_pass(), result.failed_checks()


def test_vm_cycle_rate_computation():
    log = EventLog()
    # Two VMs, each completing every 10 s -> 2 VMs / 10 s = 0.2 jobs/s.
    for t in (10.0, 20.0, 30.0):
        log.record(t, "job_completed", vm_id="vm0")
        log.record(t + 5.0, "job_completed", vm_id="vm1")
    assert vm_cycle_rate(log, 2) == pytest.approx(0.2)


def test_vm_cycle_rate_empty_log():
    assert vm_cycle_rate(EventLog(), 10) == 0.0


def test_scaled_down_sweep_has_expected_shape():
    """A miniature sweep (short window) still shows the ordering."""
    clear_sweep_cache()
    points = run_throughput_sweep(job_lengths=(18.0, 60.0), seed=1,
                                  sustain_seconds=180.0)
    by_len = {p.job_length_seconds: p for p in points}
    assert by_len[60.0].efficiency > 0.85
    assert by_len[18.0].observed_rate > by_len[60.0].observed_rate
    clear_sweep_cache()


def test_sweep_results_are_memoized():
    clear_sweep_cache()
    first = run_throughput_sweep(job_lengths=(60.0,), seed=2,
                                 sustain_seconds=120.0)
    second = run_throughput_sweep(job_lengths=(60.0,), seed=2,
                                  sustain_seconds=120.0)
    assert first is second
    clear_sweep_cache()


def test_cli_list_and_unknown(capsys):
    from repro.experiments.cli import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig07" in out and "tab01" in out
    assert main(["not-an-experiment"]) == 2


def test_cli_runs_fast_experiment(capsys):
    from repro.experiments.cli import main

    code = main(["sec4231"])
    out = capsys.readouterr().out
    assert code == 0
    assert "sec4231" in out
    assert "PASS" in out
