"""Contract-conformance tests for the typed service tier.

Every operation must be declared as a contract (schemas, version,
side-effect class), every handler's output must validate against its
response schema, and every fault the tier emits must carry a documented
(code, subcode) pair.
"""

import pytest

from repro.cluster import ClusterSpec, RELIABLE_EXECUTION
from repro.condorj2 import CondorJ2System
from repro.condorj2.api import (
    CONTRACTS,
    ConflictFault,
    FAULT_CODES,
    FAULT_SUBCODES,
    ValidationFault,
)
from repro.condorj2.api.contracts import SIDE_EFFECTS, ContractRegistry
from repro.condorj2.api.fields import SchemaDef


def small_system(**kwargs):
    defaults = dict(
        cluster=ClusterSpec(physical_nodes=2, vms_per_node=2,
                            dual_core_fraction=0.0, speed_jitter=0.0),
        seed=13,
        execution=RELIABLE_EXECUTION,
    )
    defaults.update(kwargs)
    return CondorJ2System(**defaults)


# ----------------------------------------------------------------------
# registry conformance
# ----------------------------------------------------------------------
def test_every_operation_has_a_complete_contract():
    for contract in CONTRACTS:
        assert isinstance(contract.request, SchemaDef), contract.name
        assert isinstance(contract.response, SchemaDef), contract.name
        major, _, minor = contract.version.partition(".")
        assert major.isdigit() and minor.isdigit(), contract.name
        assert contract.side_effect in SIDE_EFFECTS, contract.name
        assert contract.summary, contract.name


def test_contract_table_covers_exactly_the_service_surface():
    system = small_system()
    assert system.cas.registry.operations() == sorted(
        contract.name for contract in CONTRACTS
    )
    assert len(CONTRACTS) == 14


def test_registry_refuses_partial_bindings():
    registry = ContractRegistry()
    registry.bind("heartbeat", lambda payload, now: None)
    with pytest.raises(ValueError, match="contracts without handlers"):
        registry.assert_fully_bound()
    with pytest.raises(ValueError, match="no contract"):
        registry.bind("noSuchOp", lambda payload, now: None)


def test_every_emitted_subcode_is_documented():
    for code in FAULT_CODES:
        assert code in FAULT_SUBCODES
        for subcode, meaning in FAULT_SUBCODES[code].items():
            assert subcode == subcode.lower()
            assert meaning


# ----------------------------------------------------------------------
# handler outputs validate against their response schemas
# ----------------------------------------------------------------------
def test_every_handler_response_validates():
    """Dispatch each of the 14 operations with a valid payload.

    The gateway validates responses after the handler runs, surfacing
    any mismatch as INTERNAL/response-validation — so a clean dispatch
    *is* the conformance proof.
    """
    system = small_system()
    registry = system.cas.registry
    now = 0.0

    def call(operation, payload):
        return registry.dispatch(operation, payload, now)

    call("registerMachine", system.nodes[0].describe())
    call("registerMachine", system.nodes[1].describe())
    call("setPolicy", {"name": "p1", "value": "42"})
    assert call("getPolicy", {"name": "p1"})["value"] == "42"
    assert call("getPolicy", {"name": "absent"})["value"] is None

    submitted = call("submitJob", {"owner": "alice", "run_seconds": 30.0})
    job_id = submitted["job_id"]
    batch = call("submitJobs", {"jobs": [
        {"owner": "bob"}, {"owner": "bob", "run_seconds": 5.0},
    ]})
    assert len(batch["job_ids"]) == 2

    beat = call("heartbeat", {"machine": system.nodes[0].name})
    assert beat["status"] in ("OK", "MATCHINFO")
    assert beat["matches"] or beat["status"] == "OK"

    matches = system.cas.scheduling.pending_matches_for_machine(
        system.nodes[0].name
    ) or beat["matches"]
    assert matches, "scheduling should have matched the submitted jobs"
    match = matches[0]
    accepted = call("acceptMatch",
                    {"job_id": match["job_id"], "vm_id": match["vm_id"]})
    assert accepted["status"] == "OK"
    call("beginExecute", {"machine": system.nodes[0].name,
                          "job_id": match["job_id"],
                          "vm_id": match["vm_id"]})
    call("reportDrop", {"job_id": match["job_id"], "vm_id": match["vm_id"]})

    summary = call("queueSummary", {})
    assert summary["idle"] >= 1
    status = call("poolStatus", {})
    assert status["machines_total"] == 2
    users = call("userSummary", {"owner": "alice"})
    assert users["owner"] == "alice"
    detail = call("jobDetail", {"job_id": job_id})
    assert detail["source"] == "queue"
    assert call("jobDetail", {"job_id": 999999}) is None
    call("removeJob", {"job_id": job_id})


# ----------------------------------------------------------------------
# request validation: precise faults, applied defaults
# ----------------------------------------------------------------------
@pytest.fixture
def registry():
    return small_system().cas.registry


def _fault(registry, operation, payload):
    with pytest.raises(ValidationFault) as excinfo:
        registry.dispatch(operation, payload, 0.0)
    return excinfo.value


def test_missing_required_field(registry):
    fault = _fault(registry, "acceptMatch", {"job_id": 1})
    assert fault.subcode == "missing-field"
    assert "vm_id" in fault.detail


def test_wrong_type(registry):
    fault = _fault(registry, "acceptMatch", {"job_id": "one", "vm_id": "v"})
    assert fault.subcode == "wrong-type"


def test_unknown_field(registry):
    fault = _fault(registry, "removeJob", {"job_id": 1, "force": True})
    assert fault.subcode == "unknown-field"
    assert "force" in fault.detail


def test_enum_violation(registry):
    fault = _fault(registry, "heartbeat", {
        "machine": "m", "vms": [{"vm_id": "v", "state": "exploded"}],
    })
    assert fault.subcode == "bad-value"
    assert "exploded" in fault.detail


def test_non_struct_payload(registry):
    fault = _fault(registry, "poolStatus", [1, 2, 3])
    assert fault.subcode == "not-a-struct"


def test_bool_is_not_an_int(registry):
    fault = _fault(registry, "jobDetail", {"job_id": True})
    assert fault.subcode == "wrong-type"


def test_defaults_are_contract_owned():
    """submitJob with an empty payload gets every contract default."""
    system = small_system()
    system.cas.registry.dispatch("registerMachine",
                                 system.nodes[0].describe(), 0.0)
    response = system.cas.registry.dispatch("submitJob", {}, 0.0)
    detail = system.cas.reports.job_detail(response["job_id"])
    assert detail["owner"] == "user"
    assert detail["cmd"] == "/bin/science"
    assert detail["run_seconds"] == 60.0
    assert detail["image_size_mb"] == 16


def test_conflict_faults_carry_state_subcodes(registry):
    with pytest.raises(ConflictFault) as excinfo:
        registry.dispatch("acceptMatch", {"job_id": 404, "vm_id": "vm0@x"},
                          0.0)
    assert excinfo.value.subcode == "not-found"
    with pytest.raises(ConflictFault) as excinfo:
        registry.dispatch("heartbeat", {"machine": "never-registered"}, 0.0)
    assert excinfo.value.subcode == "not-found"


# ----------------------------------------------------------------------
# routing keys: the sharding seam
# ----------------------------------------------------------------------
def test_routing_keys_extract_shard_values():
    by_name = {contract.name: contract for contract in CONTRACTS}
    assert by_name["heartbeat"].routing_key_value(
        {"machine": "node007"}) == "node007"
    assert by_name["acceptMatch"].routing_key_value(
        {"job_id": 3, "vm_id": "vm0@n1"}) == "vm0@n1"
    assert by_name["submitJobs"].routing_key_value(
        {"jobs": [{"owner": "alice"}, {"owner": "bob"}]}) == "alice"
    assert by_name["submitJobs"].routing_key_value({"jobs": []}) is None
    assert by_name["poolStatus"].routing_key_value({}) is None


def test_write_operations_declare_routing_keys_where_shardable():
    """Every startd-facing write routes by machine or VM — the seam the
    ROADMAP's sharding item needs."""
    by_name = {contract.name: contract for contract in CONTRACTS}
    for name in ("registerMachine", "heartbeat", "beginExecute",
                 "acceptMatch", "reportDrop"):
        assert by_name[name].routing_key is not None, name
