"""Unit tests for the SOAP envelope codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.condorj2.api.faults import (
    ConflictFault,
    FaultCode,
    MalformedFault,
    ServiceFault,
    ValidationFault,
)
from repro.condorj2.web.soap import (
    SoapFault,
    decode_batch_response,
    decode_envelope,
    decode_request,
    decode_response,
    encode_batch_request,
    encode_batch_response,
    encode_request,
    encode_response,
    envelope_size,
    is_batch_request,
)


def round_trip_request(payload):
    operation, decoded = decode_request(encode_request("op", payload))
    assert operation == "op"
    return decoded


def test_scalar_round_trips():
    assert round_trip_request(None) is None
    assert round_trip_request(True) is True
    assert round_trip_request(False) is False
    assert round_trip_request(42) == 42
    assert round_trip_request(3.5) == 3.5
    assert round_trip_request("hello") == "hello"


def test_string_escaping():
    assert round_trip_request('a <b> & "c"') == 'a <b> & "c"'


def test_list_round_trip():
    assert round_trip_request([1, "two", 3.0]) == [1, "two", 3.0]
    assert round_trip_request([]) == []


def test_dict_round_trip():
    payload = {"machine": "node1", "vms": [{"vm_id": "vm0", "state": "idle"}]}
    assert round_trip_request(payload) == payload


def test_nested_structures():
    payload = {"a": {"b": {"c": [1, {"d": None}]}}}
    assert round_trip_request(payload) == payload


def test_heartbeat_shaped_payload():
    payload = {
        "machine": "node007",
        "vms": [{"vm_id": f"vm{i}@node007", "state": "idle"} for i in range(4)],
        "events": [{"kind": "completed", "job_id": 12, "vm_id": "vm0@node007"}],
    }
    assert round_trip_request(payload) == payload


def test_operation_name_decoded():
    operation, _ = decode_request(encode_request("acceptMatch", {"job_id": 1}))
    assert operation == "acceptMatch"


def test_response_round_trip():
    envelope = encode_response("heartbeat", {"status": "OK", "matches": []})
    assert decode_response(envelope) == {"status": "OK", "matches": []}


def test_response_fault_raises():
    envelope = encode_response("op", None, fault="something broke")
    with pytest.raises(SoapFault, match="something broke"):
        decode_response(envelope)


def test_decode_garbage_raises():
    with pytest.raises(SoapFault):
        decode_request("<not-soap/>")


def test_unserialisable_payload_raises():
    with pytest.raises(SoapFault):
        encode_request("op", object())


def test_envelope_size_counts_bytes():
    envelope = encode_request("op", {"k": "v"})
    assert envelope_size(envelope) == len(envelope.encode("utf-8"))
    assert envelope_size(envelope) > 50


json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-2**31, max_value=2**31),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            # Full printable-ASCII keys, including '"', '&', '<', '>' and
            # spaces — attribute escaping must round-trip all of them.
            st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                    min_size=1, max_size=8),
            children, max_size=4,
        ),
    ),
    max_leaves=20,
)


@given(json_like)
@settings(max_examples=200)
def test_codec_round_trips_arbitrary_payloads(payload):
    """Property: encode/decode is the identity on JSON-like payloads."""
    assert round_trip_request(payload) == payload


@given(json_like)
@settings(max_examples=100)
def test_response_codec_round_trips(payload):
    assert decode_response(encode_response("op", payload)) == payload


# ----------------------------------------------------------------------
# the non-string-key bugfix: payloads must round-trip or fail loudly
# ----------------------------------------------------------------------
def test_non_string_dict_key_is_rejected_loudly():
    """{1: "x"} used to decode as {"1": "x"}; now it is a typed fault."""
    with pytest.raises(MalformedFault) as excinfo:
        encode_request("op", {1: "x"})
    assert excinfo.value.code == FaultCode.MALFORMED
    assert excinfo.value.subcode == "non-string-key"


def test_non_string_key_rejected_in_nested_structures():
    with pytest.raises(MalformedFault):
        encode_request("op", {"outer": [{"ok": 1, (1, 2): "x"}]})
    with pytest.raises(MalformedFault):
        encode_response("op", {"outer": {None: "x"}})


def test_quote_bearing_struct_keys_round_trip():
    """A '"' in a key used to truncate the attribute and corrupt the
    key silently; attribute escaping must round-trip it exactly."""
    payload = {'k="x': 1, 'a b': 2, "amp&quot;": 3, "<tag>": 4}
    assert round_trip_request(payload) == payload


def test_quote_bearing_operation_names_round_trip():
    operation, _ = decode_request(encode_request('odd "op" name', {"a": 1}))
    assert operation == 'odd "op" name'


# ----------------------------------------------------------------------
# typed fault codes on the wire
# ----------------------------------------------------------------------
def test_fault_codes_round_trip():
    fault = ValidationFault("vm_id is missing", subcode="missing-field",
                            operation="acceptMatch")
    envelope = encode_response("acceptMatch", None, fault=fault)
    with pytest.raises(ValidationFault) as excinfo:
        decode_response(envelope)
    decoded = excinfo.value
    assert decoded.code == FaultCode.VALIDATION
    assert decoded.subcode == "missing-field"
    assert "vm_id" in decoded.detail


def test_legacy_string_fault_decodes_as_internal():
    envelope = encode_response("op", None, fault="something broke")
    with pytest.raises(ServiceFault) as excinfo:
        decode_response(envelope)
    assert excinfo.value.code == FaultCode.INTERNAL


# ----------------------------------------------------------------------
# the multiplexed batch envelope
# ----------------------------------------------------------------------
def test_batch_request_round_trip():
    calls = [
        ("acceptMatch", {"job_id": 1, "vm_id": "vm0@n"}),
        ("beginExecute", {"machine": "n", "job_id": 1, "vm_id": "vm0@n"}),
        ("heartbeat", {"machine": "n", "vms": [], "events": []}),
    ]
    envelope = encode_batch_request(calls)
    assert is_batch_request(envelope)
    is_batch, decoded = decode_envelope(envelope)
    assert is_batch
    assert decoded == calls


def test_single_envelope_is_not_a_batch():
    envelope = encode_request("heartbeat", {"machine": "n"})
    assert not is_batch_request(envelope)
    is_batch, calls = decode_envelope(envelope)
    assert not is_batch
    assert calls == [("heartbeat", {"machine": "n"})]


def test_decode_request_refuses_batch_envelopes():
    envelope = encode_batch_request([("a", None), ("b", None)])
    with pytest.raises(MalformedFault):
        decode_request(envelope)


def test_empty_batch_is_malformed():
    with pytest.raises(MalformedFault):
        decode_envelope(encode_batch_request([]))


def test_batch_response_round_trips_results_and_faults():
    items = [
        ("acceptMatch", {"status": "OK", "job_id": 1, "vm_id": "v"}, None),
        ("acceptMatch", None,
         ConflictFault("no match for job 2", subcode="not-found",
                       operation="acceptMatch")),
        ("queueSummary", {"idle": 3}, None),
    ]
    decoded = decode_batch_response(encode_batch_response(items))
    assert decoded[0] == {"status": "OK", "job_id": 1, "vm_id": "v"}
    assert isinstance(decoded[1], ConflictFault)
    assert decoded[1].subcode == "not-found"
    assert decoded[1].operation == "acceptMatch"
    assert "job 2" in decoded[1].detail
    assert decoded[2] == {"idle": 3}


def test_batch_response_raises_envelope_level_faults():
    envelope = encode_response("", None,
                               fault=MalformedFault("bad envelope"))
    with pytest.raises(MalformedFault):
        decode_batch_response(envelope)


operation_names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=12,
)


@given(st.lists(st.tuples(operation_names, json_like), min_size=1,
                max_size=5))
@settings(max_examples=100)
def test_batch_codec_round_trips_arbitrary_payloads(calls):
    """Property: the batch envelope is the identity on (op, payload)
    sequences — the satellite round-trip guarantee, batch included."""
    is_batch, decoded = decode_envelope(encode_batch_request(calls))
    assert is_batch
    assert decoded == calls


@given(st.lists(json_like, min_size=1, max_size=4))
@settings(max_examples=100)
def test_batch_response_codec_round_trips(payloads):
    items = [(f"op{index}", payload, None)
             for index, payload in enumerate(payloads)]
    decoded = decode_batch_response(encode_batch_response(items))
    assert decoded == payloads
