"""Unit tests for the SOAP envelope codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.condorj2.web.soap import (
    SoapFault,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    envelope_size,
)


def round_trip_request(payload):
    operation, decoded = decode_request(encode_request("op", payload))
    assert operation == "op"
    return decoded


def test_scalar_round_trips():
    assert round_trip_request(None) is None
    assert round_trip_request(True) is True
    assert round_trip_request(False) is False
    assert round_trip_request(42) == 42
    assert round_trip_request(3.5) == 3.5
    assert round_trip_request("hello") == "hello"


def test_string_escaping():
    assert round_trip_request('a <b> & "c"') == 'a <b> & "c"'


def test_list_round_trip():
    assert round_trip_request([1, "two", 3.0]) == [1, "two", 3.0]
    assert round_trip_request([]) == []


def test_dict_round_trip():
    payload = {"machine": "node1", "vms": [{"vm_id": "vm0", "state": "idle"}]}
    assert round_trip_request(payload) == payload


def test_nested_structures():
    payload = {"a": {"b": {"c": [1, {"d": None}]}}}
    assert round_trip_request(payload) == payload


def test_heartbeat_shaped_payload():
    payload = {
        "machine": "node007",
        "vms": [{"vm_id": f"vm{i}@node007", "state": "idle"} for i in range(4)],
        "events": [{"kind": "completed", "job_id": 12, "vm_id": "vm0@node007"}],
    }
    assert round_trip_request(payload) == payload


def test_operation_name_decoded():
    operation, _ = decode_request(encode_request("acceptMatch", {"job_id": 1}))
    assert operation == "acceptMatch"


def test_response_round_trip():
    envelope = encode_response("heartbeat", {"status": "OK", "matches": []})
    assert decode_response(envelope) == {"status": "OK", "matches": []}


def test_response_fault_raises():
    envelope = encode_response("op", None, fault="something broke")
    with pytest.raises(SoapFault, match="something broke"):
        decode_response(envelope)


def test_decode_garbage_raises():
    with pytest.raises(SoapFault):
        decode_request("<not-soap/>")


def test_unserialisable_payload_raises():
    with pytest.raises(SoapFault):
        encode_request("op", object())


def test_envelope_size_counts_bytes():
    envelope = encode_request("op", {"k": "v"})
    assert envelope_size(envelope) == len(envelope.encode("utf-8"))
    assert envelope_size(envelope) > 50


json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-2**31, max_value=2**31),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(alphabet=st.characters(min_codepoint=48, max_codepoint=122),
                    min_size=1, max_size=8),
            children, max_size=4,
        ),
    ),
    max_leaves=20,
)


@given(json_like)
@settings(max_examples=200)
def test_codec_round_trips_arbitrary_payloads(payload):
    """Property: encode/decode is the identity on JSON-like payloads."""
    assert round_trip_request(payload) == payload


@given(json_like)
@settings(max_examples=100)
def test_response_codec_round_trips(payload):
    assert decode_response(encode_response("op", payload)) == payload
