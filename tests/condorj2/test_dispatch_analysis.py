"""Tier-1 tests for the dispatch-complexity analysis tier.

Four properties are enforced here:

* **static soundness** — the real tree yields zero ``per-row-dispatch``
  and ``unbounded-loop-dispatch`` findings (the codebase actually is
  set-oriented), and every declared budget is provably consistent with
  its handler's complexity class;
* **sensitivity** — seeded mutations (a per-row execute loop, the same
  defect hidden behind a call edge, an unbounded while, a stripped
  budget declaration, an affine budget on a flat handler) are each
  caught by exactly the intended rule with exact file:line provenance;
* **runtime cross-check** — the batched code paths the analyzer
  certified really do dispatch a flat number of statements as the data
  grows (repair plans, drop batches, lineage walks, heartbeat events),
  and canonicalized UPDATE rendering keeps the prepared-statement cache
  to one entry per change-set;
* **CLI surface** — ``--report budgets`` emits the declared-vs-derived
  document in text and JSON.
"""

import json
import shutil
from pathlib import Path

from repro.condorj2.analysis.cli import main
from repro.condorj2.analysis.dispatch import budgets_report, check_dispatch
from repro.condorj2.beans import BeanContainer, UserBean
from repro.condorj2.database import Database
from repro.condorj2.datamgmt import DatasetService
from repro.condorj2.logic import (
    HeartbeatService,
    LifecycleService,
    SchedulingService,
)
from repro.condorj2.provenance import ProvenanceService

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro" / "condorj2"


# ----------------------------------------------------------------------
# static tier: the real tree is provably set-oriented
# ----------------------------------------------------------------------

def test_real_tree_has_no_dispatch_errors_or_warnings():
    findings = check_dispatch(PACKAGE_ROOT)
    noisy = [f.render() for f in findings
             if f.severity in ("error", "warning")]
    assert noisy == []


def test_real_tree_declares_all_budgets_consistently():
    document = budgets_report(PACKAGE_ROOT)
    operations = document["operations"]
    assert len(operations) == 14
    for entry in operations:
        assert entry["budget"] is not None, entry["operation"]
        assert entry["complexity"] == "O(1)", entry
        assert entry["consistent"] is True, entry


def test_dispatching_functions_are_classified():
    functions = budgets_report(PACKAGE_ROOT)["dispatching_functions"]
    assert functions, "no dispatching functions found at all"
    assert {f["complexity"] for f in functions.values()} <= {
        "O(1)", "O(n)", "O(n·m)"
    }


# ----------------------------------------------------------------------
# sensitivity: seeded mutations into a private copy of the tree
# ----------------------------------------------------------------------

def _copy_tree(tmp_path, parts=("logic",)):
    root = tmp_path / "tree"
    for part in parts:
        shutil.copytree(PACKAGE_ROOT / part, root / part)
    return root


def _mutate(root, old, new, filename):
    target = root / filename
    text = target.read_text()
    assert old in text, f"mutation anchor not found: {old!r}"
    target.write_text(text.replace(old, new))


def _line_of(root, needle, filename):
    lines = (root / filename).read_text().splitlines()
    hits = [index for index, line in enumerate(lines, 1) if needle in line]
    assert len(hits) == 1, f"{needle!r} matched lines {hits}"
    return hits[0]


def _sites(root, severities=("error", "warning")):
    return {(f.rule, f.file, f.line) for f in check_dispatch(root)
            if f.severity in severities}


_PER_ROW_MODULE = '''\
"""Seeded defect: one statement dispatched per queued job."""


class PerRowService:
    def __init__(self, container):
        self.container = container

    def requeue_all(self, job_ids, now):
        for job_id in job_ids:
            self.container.db.execute(  # seeded-per-row
                "UPDATE jobs SET state = 'idle' WHERE job_id = ?",
                (job_id,),
            )
'''


def test_seeded_per_row_dispatch_is_caught(tmp_path):
    root = _copy_tree(tmp_path)
    (root / "logic" / "broken.py").write_text(_PER_ROW_MODULE)
    line = _line_of(root, "# seeded-per-row", "logic/broken.py")
    assert ("per-row-dispatch", "logic/broken.py", line) in _sites(root)


_CALL_EDGE_MODULE = '''\
"""Seeded defect: the per-row dispatch hides behind a call edge."""


class EdgeService:
    def __init__(self, container):
        self.container = container

    def _touch_one(self, job_id):
        self.container.db.execute(
            "UPDATE jobs SET state = 'idle' WHERE job_id = ?", (job_id,))

    def touch_all(self, job_ids):
        for job_id in job_ids:
            self._touch_one(job_id)  # seeded-edge-call
'''


def test_seeded_per_row_dispatch_through_call_edge_is_caught(tmp_path):
    root = _copy_tree(tmp_path)
    (root / "logic" / "broken.py").write_text(_CALL_EDGE_MODULE)
    line = _line_of(root, "# seeded-edge-call", "logic/broken.py")
    assert ("per-row-dispatch", "logic/broken.py", line) in _sites(root)


_WHILE_MODULE = '''\
"""Seeded defect: dispatch inside a while with no static bound."""


class DrainService:
    def __init__(self, container):
        self.container = container

    def drain(self, limit):
        count = 0
        while count < limit:{pragma}
            self.container.db.execute(  # seeded-while-dispatch
                "DELETE FROM jobs WHERE job_id = "
                "(SELECT MIN(job_id) FROM jobs)")
            count += 1
'''


def test_seeded_unbounded_while_dispatch_is_warned(tmp_path):
    root = _copy_tree(tmp_path)
    (root / "logic" / "broken.py").write_text(
        _WHILE_MODULE.format(pragma=""))
    line = _line_of(root, "# seeded-while-dispatch", "logic/broken.py")
    assert ("unbounded-loop-dispatch", "logic/broken.py", line) \
        in _sites(root)


def test_bounded_pragma_suppresses_the_while_warning(tmp_path):
    root = _copy_tree(tmp_path)
    (root / "logic" / "broken.py").write_text(
        _WHILE_MODULE.format(pragma="  # dispatch: bounded"))
    assert _sites(root) == set()


def test_stripped_budget_declaration_is_advised(tmp_path):
    root = _copy_tree(tmp_path, parts=("logic", "api", "web"))
    _mutate(root, "        statement_budget=StatementBudget(12),\n", "",
            "api/contracts.py")
    line = _line_of(root, '"registerMachine", "1.0",',
                    "api/contracts.py") - 1
    assert ("budget-undeclared", "api/contracts.py", line) \
        in _sites(root, severities=("advice",))


def test_affine_budget_on_flat_handler_is_a_mismatch(tmp_path):
    root = _copy_tree(tmp_path, parts=("logic", "api", "web"))
    _mutate(root, "statement_budget=StatementBudget(28)",
            'statement_budget=StatementBudget(4, per_item=2, '
            'batch_field="events")',
            "api/contracts.py")
    line = _line_of(root, "per_item=2", "api/contracts.py")
    assert ("budget-mismatch", "api/contracts.py", line) in _sites(root)


def test_unmutated_copy_of_the_service_layer_is_clean(tmp_path):
    root = _copy_tree(tmp_path, parts=("logic", "api", "web"))
    assert _sites(root) == set()


# ----------------------------------------------------------------------
# runtime cross-check: certified paths really dispatch flat counts
# ----------------------------------------------------------------------

def test_repair_plan_is_two_statements_flat_in_shortfalls():
    container = BeanContainer(Database())
    datasets = DatasetService(container)
    for index in range(12):
        dataset_id = datasets.register_dataset(
            f"d{index}", "user", 10.0, now=0.0, k_safety=2)
        datasets.add_replica(dataset_id, "m0", now=0.0)
    before = container.db.counts.snapshot()
    plan = datasets.repair_plan(["m0", "m1", "m2"])
    delta = container.db.counts.delta(before)
    assert len(plan) == 12
    assert delta.statements == 2


def test_report_drops_is_four_statements_flat_in_batch_size():
    container = BeanContainer(Database())
    lifecycle = LifecycleService(container)
    drops = [(index, f"m1.vm{index}", "flaky") for index in range(1, 26)]
    before = container.db.counts.snapshot()
    lifecycle.report_drops(drops, now=1.0)
    delta = container.db.counts.delta(before)
    assert delta.statements == 4
    assert delta.commits == 1


def test_lineage_statements_scale_with_depth_not_fanout():
    container = BeanContainer(Database())
    provenance = ProvenanceService(container)
    for index in range(10):
        provenance.record(f"part{index}", index, "/bin/make", now=1.0,
                          inputs=("raw",))
    provenance.record("final", 99, "/bin/join", now=2.0,
                      inputs=tuple(f"part{index}" for index in range(10)))
    before = container.db.counts.snapshot()
    lineage = provenance.lineage("final")
    delta = container.db.counts.delta(before)
    assert len(lineage) == 11
    # Three BFS levels ([final], [part*], [raw]) -> three set queries,
    # not one probe per ancestry node.
    assert delta.statements == 3


def test_heartbeat_drop_events_dispatch_flat_statement_counts():
    def beat(drop_count):
        container = BeanContainer(Database())
        scheduling = SchedulingService(container)
        lifecycle = LifecycleService(container)
        heartbeat = HeartbeatService(container, scheduling, lifecycle)
        heartbeat.register_machine({"name": "m1", "vm_count": 2}, 0.0)
        events = [
            {"kind": "dropped", "job_id": index, "vm_id": "m1.vm1",
             "reason": "flaky"}
            for index in range(1, drop_count + 1)
        ]
        before = container.db.counts.snapshot()
        heartbeat.process({"machine": "m1", "vms": [], "events": events},
                          now=1.0)
        return container.db.counts.delta(before).statements

    assert beat(2) == beat(20)


def test_bean_update_statement_text_is_canonical():
    container = BeanContainer(Database())
    container.create(UserBean, user_name="alice", created_at=0.0)
    container.create(UserBean, user_name="bob", created_at=0.0)
    alice = container.find(UserBean, "alice")
    bob = container.find(UserBean, "bob")
    cache = container.db.statement_cache
    alice.update(priority=0.5, accumulated_usage_seconds=1.0)
    entries_after_first = len(cache)
    misses_after_first = container.db.counts.prepared_misses
    # Reversed keyword order must render the same canonical SQL text:
    # same cache entry, no new compilation.
    bob.update(accumulated_usage_seconds=2.0, priority=0.25)
    assert len(cache) == entries_after_first
    assert container.db.counts.prepared_misses == misses_after_first


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

def test_cli_budgets_report_text(capsys):
    assert main(["--report", "budgets"]) == 0
    out = capsys.readouterr().out
    assert "heartbeat: budget 28" in out
    assert "consistent" in out and "MISMATCH" not in out
    assert "14 operations" in out


def test_cli_budgets_report_json(tmp_path, capsys):
    output = tmp_path / "dispatch-budgets.json"
    assert main(["--report", "budgets", "--format", "json",
                 "--output", str(output)]) == 0
    capsys.readouterr()
    document = json.loads(output.read_text())
    assert document["version"] == 1
    assert len(document["operations"]) == 14
    assert all(entry["consistent"] for entry in document["operations"])
    assert document["dispatching_functions"]
