"""Tier-1 tests for the schema-aware SQL static analyzer.

Four properties are enforced here:

* **the gate** — the committed tree has zero findings the committed
  baseline does not absorb (and zero errors outright), which is the
  same judgement the CI ``analysis`` job makes;
* **sensitivity** — seeded mutations (a bogus column, a dropped
  placeholder) are caught as errors with exact file:line provenance;
* **coverage** — replaying a full service workload on the memory
  engine and comparing its :class:`StatementCounts` text ledger with
  the extracted corpus shows the analyzer accounts for (and parses) at
  least 95% of the SQL the system actually executes;
* **rules** — each checker rule and the planner-backed index advisor
  fire on targeted statements and stay silent on correct ones.
"""

import json
from pathlib import Path

from repro.cluster import JobSpec
from repro.condorj2.analysis import RULES, Baseline, Catalog, analyze
from repro.condorj2.analysis.check import check_extracted
from repro.condorj2.analysis.cli import main
from repro.condorj2.analysis.extract import (
    ExtractedStatement, SqlTemplate, extract_corpus,
)
from repro.condorj2.beans import BeanContainer
from repro.condorj2.database import Database
from repro.condorj2.datamgmt import DatasetService
from repro.condorj2.logic import (
    ConfigService,
    HeartbeatService,
    LifecycleService,
    SchedulingService,
    SubmissionService,
)
from repro.condorj2.logic.queries import ReportService
from repro.condorj2.provenance import ProvenanceService
from repro.condorj2.storage import planner
from repro.condorj2.storage import sqlparser

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro" / "condorj2"
BASELINE_PATH = REPO_ROOT / "ANALYSIS_BASELINE.json"


def _rules(findings):
    return sorted(f.rule for f in findings)


def _check_sql(sql, arity=None, named=None, no_params=False,
               catalog=None):
    statement = ExtractedStatement(
        file="t.py", line=1, method="execute",
        template=SqlTemplate(parts=(sql,)), renders=[sql],
        arity=arity, named=named, no_params=no_params,
    )
    return check_extracted(statement, catalog or Catalog())


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------

def test_tree_has_no_errors_at_all():
    _corpus, findings = analyze(PACKAGE_ROOT)
    errors = [f for f in findings if f.severity == "error"]
    assert errors == [], [f.render() for f in errors]


def test_tree_is_clean_against_committed_baseline():
    """The exact CI judgement: zero non-baselined findings of any
    severity.  Fixing a finding must also shrink the baseline."""
    _corpus, findings = analyze(PACKAGE_ROOT)
    baseline = Baseline.load(BASELINE_PATH)
    fresh = baseline.filter(findings)
    assert fresh == [], [f.render() for f in fresh]


def test_baseline_only_contains_advice():
    """Accepted debt is advisory-severity only — identifier templates
    and lifecycle-coverage advisories, never errors or warnings."""
    data = json.loads(BASELINE_PATH.read_text())
    assert data["findings"], "baseline unexpectedly empty"
    for entry in data["findings"]:
        rule = entry["fingerprint"].split("|", 1)[0]
        assert RULES[rule][0] == "advice", entry["fingerprint"]


# ----------------------------------------------------------------------
# sensitivity: seeded mutations are caught with exact provenance
# ----------------------------------------------------------------------

_MUTANT = '''\
class Repo:
    def fetch(self, db, state):
        return db.query_all(
            "SELECT job_id, bogus_column FROM jobs WHERE state = ?",
            (state,),
        )

    def touch(self, db, a, b):
        db.execute(
            "UPDATE jobs SET state = ? WHERE job_id = ? AND owner = ?",
            (a, b),
        )
'''


def test_seeded_mutations_are_caught_with_provenance(tmp_path):
    (tmp_path / "fixture.py").write_text(_MUTANT)
    _corpus, findings = analyze(tmp_path)
    errors = {(f.rule, f.file, f.line) for f in findings
              if f.severity == "error"}
    assert ("unknown-column", "fixture.py", 3) in errors
    assert ("placeholder-arity", "fixture.py", 9) in errors
    column = [f for f in findings if f.rule == "unknown-column"]
    assert "bogus_column" in column[0].message
    arity = [f for f in findings if f.rule == "placeholder-arity"]
    assert "3 placeholders" in arity[0].message
    assert "2 parameters" in arity[0].message


def test_mutations_fail_the_cli_gate(tmp_path, capsys):
    (tmp_path / "fixture.py").write_text(_MUTANT)
    assert main(["--root", str(tmp_path)]) == 1
    assert main(["--root", str(tmp_path), "--fail-on", "none"]) == 0
    capsys.readouterr()


# ----------------------------------------------------------------------
# coverage: the corpus accounts for the SQL the system really runs
# ----------------------------------------------------------------------

def _run_service_workload():
    """A deterministic pass through every service, memory backend.

    Deliberately issues *no* raw SQL of its own: every statement that
    reaches the engine comes from the ``src`` tree, so the counts-texts
    ledger is exactly the runtime corpus the extractor must cover.
    """
    db = Database(backend="memory")
    container = BeanContainer(db)
    submission = SubmissionService(container)
    scheduling = SchedulingService(container)
    lifecycle = LifecycleService(container)
    heartbeat = HeartbeatService(container, scheduling, lifecycle)
    config = ConfigService(container)
    reports = ReportService(db)
    datasets = DatasetService(container)
    provenance = ProvenanceService(container)

    now = 1000.0
    for name, vm_count in (("m00", 2), ("m01", 1)):
        heartbeat.register_machine(
            {"name": name, "vm_count": vm_count, "cores": 2,
             "memory_mb": 512}, now)

    first = JobSpec(owner="alice", run_seconds=10.0)
    second = JobSpec(owner="bob", run_seconds=10.0)
    third = JobSpec(owner="alice", run_seconds=10.0,
                    depends_on=(first.job_id,))
    submission.submit_jobs([first, second, third], now)

    scheduling.run_pass(now)
    pending = scheduling.pending_matches_for_machine("m00")
    pending += scheduling.pending_matches_for_machine("m01")
    for row in pending:
        lifecycle.accept_match(row["job_id"], row["vm_id"], now + 1)

    # Complete one run, drop another, through the heartbeat protocol.
    if pending:
        done = pending[0]
        heartbeat.process(
            {"machine": done["vm_id"].split("@", 1)[1], "vms": [],
             "events": [{"kind": "completed", "job_id": done["job_id"],
                         "vm_id": done["vm_id"]}]},
            now + 12,
        )
    if len(pending) > 1:
        dropped = pending[1]
        lifecycle.report_drop(dropped["job_id"], dropped["vm_id"],
                              now + 13, reason="test-drop")

    heartbeat.process({"machine": "m01", "vms": [], "events": []}, now + 14)
    heartbeat.mark_missing_machines(now + 500, timeout_seconds=60.0)
    submission.remove_job(third.job_id)

    config.set("max_matches_per_pass", "64", now + 20, changed_by="test")
    config.get("max_matches_per_pass")
    config.history("max_matches_per_pass")
    config.value_at("max_matches_per_pass", now + 21)

    dataset = datasets.register_dataset("genome", "alice", 100.0, now + 30)
    datasets.dataset_id("genome")
    datasets.add_replica(dataset, "m00", now + 31)
    datasets.replica_machines(dataset)
    datasets.invalidate_replica(dataset, "m00")
    datasets.under_replicated()
    datasets.repair_plan(["m00", "m01"])
    datasets.machines_with_inputs(["genome"])

    provenance.record("out.dat", first.job_id, "/bin/science", now + 40,
                      inputs=("genome",))
    provenance.derivation_of("out.dat")
    provenance.lineage("out.dat")
    provenance.outputs_derived_from("genome")
    provenance.executables_used([first.job_id, second.job_id])

    reports.queue_summary()
    reports.pool_status()
    reports.user_summary("alice")
    reports.job_detail(second.job_id)
    reports.throughput_by_minute()
    reports.machine_boot_records("m00")
    reports.accounting_by_user()
    reports.drops_by_machine()

    texts = dict(db.counts.texts)
    db.close()
    return texts


def test_corpus_covers_runtime_statements():
    texts = _run_service_workload()
    assert len(texts) >= 30, "workload too thin to be meaningful"
    corpus = extract_corpus(PACKAGE_ROOT)

    covered = []
    uncovered = []
    for sql in texts:
        statement = corpus.covers(sql)
        if statement is None:
            uncovered.append(sql)
            continue
        sqlparser.parse(sql)  # must also be parseable, not just matched
        covered.append(sql)
    ratio = len(covered) / len(texts)
    assert ratio >= 0.95, (
        f"only {ratio:.0%} of {len(texts)} runtime statements covered; "
        f"missing: {uncovered[:5]}"
    )


# ----------------------------------------------------------------------
# checker rules
# ----------------------------------------------------------------------

def test_clean_statement_has_no_findings():
    findings = _check_sql(
        "SELECT job_id, owner FROM jobs WHERE state = 'idle'", arity=0,
        no_params=True)
    assert findings == []


def test_unknown_table_and_column():
    assert "unknown-table" in _rules(_check_sql(
        "SELECT x FROM no_such_table"))
    assert "unknown-column" in _rules(_check_sql(
        "SELECT no_such_column FROM jobs"))
    assert "unknown-column" in _rules(_check_sql(
        "SELECT j.no_such_column FROM jobs j"))


def test_parse_error_is_reported_not_raised():
    findings = _check_sql("SELECT FROM WHERE")
    assert _rules(findings) == ["sql-parse-error"]


def test_ambiguous_column_is_a_warning():
    findings = _check_sql(
        "SELECT state FROM jobs j JOIN vms v ON v.vm_id = j.job_id")
    matching = [f for f in findings if f.rule == "ambiguous-column"]
    assert matching and matching[0].severity == "warning"


def test_alias_resolves_in_group_by_and_having():
    findings = _check_sql(
        "SELECT CAST(completed_at / 60 AS INTEGER) AS minute, COUNT(*) "
        "FROM job_history GROUP BY minute ORDER BY minute")
    assert findings == []


def test_correlated_subquery_sees_outer_scope():
    findings = _check_sql(
        "SELECT job_id FROM jobs j WHERE NOT EXISTS "
        "(SELECT 1 FROM matches mt WHERE mt.job_id = j.job_id)")
    assert findings == []


def test_json_each_provides_value_column():
    findings = _check_sql(
        "SELECT job_id FROM jobs "
        "WHERE job_id IN (SELECT value FROM json_each(?))", arity=1)
    assert findings == []


def test_insert_not_null_coverage():
    findings = _check_sql(
        "INSERT INTO vms (vm_id, machine_name) VALUES (?, ?)", arity=2)
    matching = [f for f in findings if f.rule == "not-null-write"]
    # last_update is NOT NULL with a default; state has a default too.
    assert matching == []
    findings = _check_sql(
        "INSERT INTO provenance (output_name, job_id) VALUES (?, ?)",
        arity=2)
    omitted = [f for f in findings if f.rule == "not-null-write"]
    assert any("executable" in f.message for f in omitted)
    assert any("recorded_at" in f.message for f in omitted)


def test_explicit_null_into_not_null_column():
    findings = _check_sql(
        "UPDATE jobs SET owner = NULL WHERE job_id = ?", arity=1)
    assert "not-null-write" in _rules(findings)


def test_insert_arity_mismatch():
    findings = _check_sql(
        "INSERT INTO matches (job_id, vm_id, created_at) VALUES (?, ?)",
        arity=2)
    assert "insert-arity" in _rules(findings)


def test_check_domain_in_comparison_and_write():
    findings = _check_sql("SELECT * FROM jobs WHERE state = 'idel'")
    assert "check-domain" in _rules(findings)
    findings = _check_sql(
        "UPDATE jobs SET state = 'sleeping' WHERE job_id = ?", arity=1)
    assert "check-domain" in _rules(findings)
    findings = _check_sql(
        "SELECT * FROM jobs WHERE state IN ('idle', 'matched')")
    assert "check-domain" not in _rules(findings)


def test_affinity_mismatch_is_an_error():
    findings = _check_sql("SELECT * FROM jobs WHERE owner = 42")
    matching = [f for f in findings if f.rule == "affinity-mismatch"]
    assert matching and matching[0].severity == "error"
    # Numeric strings reconcile with numeric affinity; no finding.
    assert _check_sql("SELECT * FROM jobs WHERE job_id = '5'") == []


def test_placeholder_arity_against_call_site():
    findings = _check_sql(
        "SELECT * FROM jobs WHERE job_id = ? AND owner = ?", arity=1)
    assert "placeholder-arity" in _rules(findings)
    assert _check_sql(
        "SELECT * FROM jobs WHERE job_id = ? AND owner = ?", arity=2) == []


def test_named_parameter_surface():
    sql = ("SELECT * FROM jobs WHERE owner = :owner "
           "AND state = :state")
    assert "param-names" in _rules(_check_sql(sql, named=("owner",)))
    assert "param-extra" in _rules(
        _check_sql(sql, named=("owner", "state", "bogus")))
    assert _check_sql(sql, named=("owner", "state")) == []
    assert "param-style" in _rules(_check_sql(sql, arity=2))
    assert "param-style" in _rules(_check_sql(
        "SELECT * FROM jobs WHERE job_id = ?", named=("job_id",)))


# ----------------------------------------------------------------------
# index advisor
# ----------------------------------------------------------------------

def test_advisor_stays_quiet_on_indexed_access():
    assert _check_sql("SELECT * FROM jobs WHERE owner = ?", arity=1) == []
    assert _check_sql("SELECT * FROM jobs WHERE job_id = ?", arity=1) == []
    assert _check_sql(
        "SELECT * FROM runs WHERE job_id = ?", arity=1) == []  # unique


def test_advisor_flags_unindexed_equality():
    findings = _check_sql("SELECT * FROM jobs WHERE cmd = ?", arity=1)
    matching = [f for f in findings if f.rule == "full-scan"]
    assert matching and matching[0].severity == "advice"
    assert "jobs(cmd)" in matching[0].message


def test_advisor_collects_on_clause_conjuncts():
    findings = _check_sql(
        "SELECT j.job_id FROM jobs j "
        "JOIN accounting a ON a.job_id = j.job_id "
        "WHERE j.state = 'idle'", arity=0, no_params=True)
    # accounting is probed by job_id (from the ON clause) but only has
    # an owner index; jobs itself is supported and not reported.
    matching = [f for f in findings if f.rule == "full-scan"]
    assert len(matching) == 1
    assert "accounting(job_id)" in matching[0].message


def test_advisor_unconstrained_scan_is_not_flagged():
    assert _check_sql(
        "SELECT state, COUNT(*) FROM jobs GROUP BY state ORDER BY state",
        arity=0, no_params=True) == []


def test_planner_advises_equality_access_paths():
    advice = planner.advise_equality_access(
        "t", ["b", "a"], primary_key=("a",))
    assert advice.supported == "primary key" and not advice.full_scan
    advice = planner.advise_equality_access(
        "t", ["b"], primary_key=("a",), unique=(("b", "c"),))
    assert advice.supported == "unique(b, c)"
    advice = planner.advise_equality_access(
        "t", ["c"], primary_key=("a",), indexes={"idx_c": ("c",)})
    assert advice.supported == "idx_c"
    advice = planner.advise_equality_access(
        "t", ["d", "d", "e"], primary_key=("a",))
    assert advice.full_scan
    assert advice.suggested_columns == ("d", "e")  # deduped, in order
    advice = planner.advise_equality_access("t", [])
    assert not advice.full_scan and advice.supported is None


# ----------------------------------------------------------------------
# baseline semantics and CLI surface
# ----------------------------------------------------------------------

def test_baseline_absorbs_counted_occurrences(tmp_path):
    (tmp_path / "fixture.py").write_text(_MUTANT)
    _corpus, findings = analyze(tmp_path)
    errors = [f for f in findings if f.severity == "error"]
    assert errors
    baseline = Baseline.from_findings(findings)
    assert baseline.filter(findings) == []
    # A second occurrence of an accepted fingerprint still surfaces.
    assert baseline.filter(findings + findings[:1]) == [findings[0]]


def test_baseline_fingerprints_ignore_line_drift(tmp_path):
    (tmp_path / "fixture.py").write_text(_MUTANT)
    _corpus, findings = analyze(tmp_path)
    baseline = Baseline.from_findings(findings)
    (tmp_path / "fixture.py").write_text("# shifted\n\n\n" + _MUTANT)
    _corpus, shifted = analyze(tmp_path)
    assert {f.line for f in shifted} != {f.line for f in findings}
    assert baseline.filter(shifted) == []


def test_cli_json_report_shape(tmp_path, capsys):
    (tmp_path / "fixture.py").write_text(_MUTANT)
    out = tmp_path / "report.json"
    code = main(["--root", str(tmp_path), "--format", "json",
                 "--output", str(out), "--fail-on", "none"])
    assert code == 0
    capsys.readouterr()
    report = json.loads(out.read_text())
    assert report["statements"] == 2
    assert report["summary"]["error"] >= 2
    finding = report["findings"][0]
    assert set(finding) == {"rule", "severity", "file", "line",
                            "message", "statement"}


def test_cli_write_and_use_baseline(tmp_path, capsys):
    (tmp_path / "fixture.py").write_text(_MUTANT)
    baseline = tmp_path / "baseline.json"
    assert main(["--root", str(tmp_path), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    assert main(["--root", str(tmp_path), "--baseline", str(baseline),
                 "--fail-on", "any"]) == 0
    # New debt on top of the baseline still fails.
    (tmp_path / "more.py").write_text(_MUTANT)
    assert main(["--root", str(tmp_path), "--baseline",
                 str(baseline)]) == 1
    capsys.readouterr()
