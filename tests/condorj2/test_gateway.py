"""Gateway pipeline, metering, batch envelope and end-to-end fault tests."""

import pytest

from repro.cluster import ClusterSpec, RELIABLE_EXECUTION
from repro.condorj2 import CondorJ2System
from repro.condorj2.api import FaultCode, ServiceFault, ValidationFault
from repro.condorj2.api.gateway import MALFORMED_OP
from repro.condorj2.web.soap import encode_request
from repro.workload import fixed_length_batch


def small_system(**kwargs):
    defaults = dict(
        cluster=ClusterSpec(physical_nodes=2, vms_per_node=2,
                            dual_core_fraction=0.0, speed_jitter=0.0),
        seed=13,
        execution=RELIABLE_EXECUTION,
    )
    defaults.update(kwargs)
    return CondorJ2System(**defaults)


# ----------------------------------------------------------------------
# metering middleware (per-operation call/fault/latency stats)
# ----------------------------------------------------------------------
def test_meter_records_calls_faults_and_latency():
    system = small_system()
    gateway = system.cas.gateway
    system.cas.registry.dispatch("registerMachine",
                                 system.nodes[0].describe(), 0.0)
    with pytest.raises(ServiceFault):
        system.cas.registry.dispatch(
            "acceptMatch", {"job_id": 404, "vm_id": "vm0@x"}, 0.0
        )
    register = gateway.stats["registerMachine"]
    assert register.calls == 1
    assert register.faults == 0
    assert register.handler_seconds > 0.0
    assert register.max_handler_seconds <= register.handler_seconds
    assert register.statements > 0
    accept = gateway.stats["acceptMatch"]
    assert accept.calls == 1
    assert accept.faults == 1
    assert accept.fault_codes == {FaultCode.CONFLICT: 1}
    assert accept.fault_rate == 1.0


def test_validation_failures_meter_without_counting_a_call():
    system = small_system()
    with pytest.raises(ValidationFault):
        system.cas.registry.dispatch("acceptMatch", {"job_id": 1}, 0.0)
    stats = system.cas.gateway.stats["acceptMatch"]
    assert stats.calls == 0
    assert stats.fault_codes == {FaultCode.VALIDATION: 1}
    # ...but it still counts as an attempt, so the fault rate is honest.
    assert stats.attempts == 1
    assert stats.fault_rate == 1.0


def test_fault_rate_shares_a_denominator_across_fault_kinds():
    """Validation faults (pre-handler) and handler faults must land in
    the same attempts denominator — 1 success + 2 validation faults is
    a 2/3 fault rate, never 2.0 or 0.0."""
    system = small_system()
    system.cas.registry.dispatch("submitJob", {"owner": "a"}, 0.0)
    for _ in range(2):
        with pytest.raises(ValidationFault):
            system.cas.registry.dispatch("submitJob", {"owner": 7}, 0.0)
    stats = system.cas.gateway.stats["submitJob"]
    assert stats.attempts == 3
    assert stats.calls == 1
    assert stats.faults == 2
    assert stats.fault_rate == pytest.approx(2 / 3)


def test_meter_attributes_statement_work_per_operation():
    system = small_system()
    system.cas.registry.dispatch("registerMachine",
                                 system.nodes[0].describe(), 0.0)
    system.cas.registry.dispatch("submitJob", {"owner": "a"}, 0.0)
    stats = system.cas.gateway.stats
    assert stats["submitJob"].row_work > 0
    assert stats["submitJob"].sim_seconds > 0.0


# ----------------------------------------------------------------------
# batch dispatch: isolation and batchability
# ----------------------------------------------------------------------
def test_batch_isolates_per_op_faults():
    system = small_system()
    items = system.cas.gateway.dispatch_batch(
        [
            ("submitJob", {"owner": "a"}),
            ("acceptMatch", {"job_id": 404, "vm_id": "nope"}),
            ("queueSummary", {}),
        ],
        0.0,
    )
    assert [item.ok for item in items] == [True, False, True]
    assert items[1].fault.code == FaultCode.CONFLICT
    assert items[2].result["idle"] == 1


def test_non_batchable_operation_is_refused_in_batch():
    system = small_system()
    items = system.cas.gateway.dispatch_batch(
        [("registerMachine", system.nodes[0].describe())], 0.0
    )
    assert not items[0].ok
    assert items[0].fault.code == FaultCode.VALIDATION
    assert items[0].fault.subcode == "not-batchable"
    # ...but it is fine as a single-op envelope.
    assert system.cas.registry.dispatch(
        "registerMachine", system.nodes[0].describe(), 0.0
    )["status"] == "OK"


# ----------------------------------------------------------------------
# end-to-end fault paths through the CAS (each charged in the cost model)
# ----------------------------------------------------------------------
def _send_raw(system, envelope):
    """Push a raw envelope through the network to the CAS."""
    return system.sim.spawn(_raw_call(system, envelope))


def _raw_call(system, envelope):
    from repro.condorj2.web.soap import decode_response, envelope_size
    from repro.sim.kernel import Wait
    from repro.sim.network import RpcResult

    signal = system.network.request(
        system.user, "cas", "raw", payload=envelope,
        size_bytes=envelope_size(envelope),
    )
    _, result = yield Wait(signal)
    assert isinstance(result, RpcResult)
    return decode_response(result.value)


@pytest.mark.parametrize(
    "envelope_factory, expected_code, expected_subcode",
    [
        (lambda: "<soap:Envelope><garbage>", FaultCode.MALFORMED,
         "bad-envelope"),
        (lambda: encode_request("noSuchOp", {}), FaultCode.UNKNOWN_OP,
         "unregistered"),
        (lambda: encode_request("acceptMatch", {"job_id": 1}),
         FaultCode.VALIDATION, "missing-field"),
    ],
)
def test_fault_paths_end_to_end(envelope_factory, expected_code,
                                expected_subcode):
    system = small_system()
    system.start()
    system.sim.run(until=5.0)
    faults_before = system.cas.faults_returned
    user_cpu_before = system.server_host.meter.total_seconds("user")
    process = _send_raw(system, envelope_factory())
    system.sim.run(until=10.0)
    assert process.done
    fault = process.error
    assert isinstance(fault, ServiceFault)
    assert fault.code == expected_code
    assert fault.subcode == expected_subcode
    assert system.cas.faults_returned == faults_before + 1
    # The fault consumed real simulated CPU: parse + encode at minimum.
    assert (system.server_host.meter.total_seconds("user")
            > user_cpu_before)


def test_malformed_envelopes_are_metered():
    system = small_system()
    system.start()
    system.sim.run(until=5.0)
    _send_raw(system, "<soap:Envelope><garbage>")
    system.sim.run(until=10.0)
    stats = system.cas.gateway.stats[MALFORMED_OP]
    assert stats.fault_codes == {FaultCode.MALFORMED: 1}
    # The garbage still consumed parse + encode CPU, and it shows.
    assert stats.sim_seconds > 0.0


def test_unknown_ops_never_create_raw_stats_rows():
    """The transport charge for an unresolved operation name lands on
    the "(unknown)" pseudo-op, not on an arbitrary client-supplied
    string (which would grow the stats table unboundedly)."""
    from repro.condorj2.api.gateway import UNKNOWN_OP

    system = small_system()
    system.start()
    system.sim.run(until=5.0)
    _send_raw(system, encode_request("noSuchOp", {}))
    system.sim.run(until=10.0)
    assert "noSuchOp" not in system.cas.gateway.stats
    unknown = system.cas.gateway.stats[UNKNOWN_OP]
    assert unknown.fault_codes == {FaultCode.UNKNOWN_OP: 1}
    assert unknown.sim_seconds > 0.0


# ----------------------------------------------------------------------
# the batch envelope in the wild: fewer simulated round-trips
# ----------------------------------------------------------------------
def test_accept_and_begin_ride_the_batch_envelope():
    """Regression: the startd's accept/begin sequences must multiplex.

    Four jobs matched onto one 4-VM machine used to cost four
    acceptMatch round-trips (and begin notifications would have cost
    four more); the batch envelope carries all of them in at most a
    couple of envelopes, with zero single-op acceptMatch messages.
    """
    system = CondorJ2System(
        ClusterSpec(physical_nodes=1, vms_per_node=4,
                    dual_core_fraction=0.0, speed_jitter=0.0),
        seed=5, execution=RELIABLE_EXECUTION, record_trace=True,
    )
    system.submit_at(0.0, fixed_length_batch(4, 15.0))
    system.run_until_complete(expected_jobs=4, max_seconds=600.0)
    assert system.completed_count() == 4

    calls = system.cas.registry.calls
    assert calls.get("acceptMatch") == 4
    assert calls.get("beginExecute") == 4
    # No single-op envelopes for the accept sequence...
    assert system.trace.count("acceptMatch") == 0
    assert system.trace.count("beginExecute") == 0
    # ...and strictly fewer envelopes than the 8 op round-trips they
    # replace (4 accepts in one batch; begins ride heartbeat batches).
    batches = system.trace.count("batch")
    assert 1 <= batches < 8


def test_settled_riders_are_not_replayed_when_heartbeat_faults():
    """Regression: a delivered batch settles its riders.

    When the heartbeat op in a rider-carrying envelope faults at the
    application level, the beginExecute riders in the same envelope
    already executed — requeueing them (as the client once did) replays
    committed operations, which the server then rejects as conflicts.
    """
    from repro.condorj2.api import ConflictFault

    system = CondorJ2System(
        ClusterSpec(physical_nodes=1, vms_per_node=4,
                    dual_core_fraction=0.0, speed_jitter=0.0),
        seed=5, execution=RELIABLE_EXECUTION,
    )
    gateway = system.cas.gateway
    original = gateway.registry.handler("heartbeat")
    state = {"injected": False}

    def flaky(payload, now):
        # Fault exactly one heartbeat that shares its envelope with
        # riders: within a batch the riders dispatch first, so the
        # first heartbeat after any beginExecute call is the one in
        # that rider-carrying envelope.
        begin = gateway.stats.get("beginExecute")
        if begin and begin.calls and not state["injected"]:
            state["injected"] = True
            raise ConflictFault("injected heartbeat fault",
                                subcode="injected-test")
        return original(payload, now)

    gateway.registry.bind("heartbeat", flaky)
    system.submit_at(0.0, fixed_length_batch(4, 15.0))
    system.run_until_complete(expected_jobs=4, max_seconds=600.0)
    assert system.completed_count() == 4
    assert state["injected"], "the fault injection never fired"
    begin = gateway.stats["beginExecute"]
    # Replayed riders would show up as extra (conflicting) attempts.
    assert begin.attempts == 4
    assert begin.faults == 0


def test_batch_envelope_via_user_client():
    system = small_system()
    system.start()
    process = system.sim.spawn(system.user.call_batch([
        ("submitJob", {"owner": "alice", "run_seconds": 20.0}),
        ("queueSummary", {}),
        ("jobDetail", {"job_id": 424242}),
        ("acceptMatch", {"job_id": 424242, "vm_id": "ghost"}),
    ]))
    system.sim.run(until=5.0)
    assert process.done and process.error is None
    submit, summary, detail, accept = process.result
    assert submit["status"] == "OK"
    assert summary["idle"] >= 1
    assert detail is None
    assert isinstance(accept, ServiceFault)
    assert accept.code == FaultCode.CONFLICT
    # One transport, four validated dispatches.
    assert system.cas.requests_handled >= 1


def test_statistics_page_surfaces_per_operation_stats():
    system = small_system()
    system.start()
    system.submit_at(1.0, fixed_length_batch(4, 15.0))
    system.run_until_complete(expected_jobs=4, max_seconds=600.0)
    page = system.cas.site.statistics_page()
    assert "Web-Service Operations" in page
    for operation in ("heartbeat", "acceptMatch", "submitJobs"):
        assert operation in page
    assert "fault rate" in page
