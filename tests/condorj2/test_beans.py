"""Unit tests for the entity-bean persistence layer."""

import pytest

from repro.condorj2.beans import (
    BeanContainer,
    BeanNotFound,
    BeanStateError,
    JobBean,
    MachineBean,
    PolicyBean,
    UserBean,
    VmBean,
)
from repro.condorj2.beans.base import BeanConsistencyError
from repro.condorj2.database import Database, DatabaseError


@pytest.fixture
def container():
    return BeanContainer(Database())


def make_user(container, name="alice"):
    return container.create(UserBean, user_name=name, created_at=0.0)


def make_job(container, owner="alice", **overrides):
    make_user(container, owner) if container.find_optional(UserBean, owner) is None else None
    fields = dict(
        owner=owner, cmd="/bin/x", state="idle", run_seconds=60.0,
        submitted_at=0.0, attempts=0,
    )
    fields.update(overrides)
    return container.create(JobBean, **fields)


def test_create_and_find_round_trip(container):
    user = make_user(container)
    found = container.find(UserBean, "alice")
    assert found["user_name"] == "alice"
    assert found.pk_value == user.pk_value


def test_find_missing_raises(container):
    with pytest.raises(BeanNotFound):
        container.find(UserBean, "nobody")
    assert container.find_optional(UserBean, "nobody") is None


def test_update_writes_through(container):
    user = make_user(container)
    user.update(priority=0.25)
    fresh = container.find(UserBean, "alice")
    assert fresh["priority"] == 0.25


def test_update_unknown_field_rejected(container):
    user = make_user(container)
    with pytest.raises(DatabaseError):
        user.update(bogus_field=1)


def test_remove_deletes_tuple(container):
    user = make_user(container)
    user.remove()
    assert container.find_optional(UserBean, "alice") is None


def test_refresh_reloads(container):
    user = make_user(container)
    container.db.execute(
        "UPDATE users SET priority = 0.9 WHERE user_name = 'alice'"
    )
    user.refresh()
    assert user["priority"] == 0.9


def test_refresh_after_delete_raises(container):
    user = make_user(container)
    container.db.execute("DELETE FROM users WHERE user_name = 'alice'")
    with pytest.raises(BeanNotFound):
        user.refresh()


def test_find_where_and_count(container):
    make_user(container, "a")
    make_user(container, "b")
    beans = container.find_where(UserBean, "user_name != ?", ("a",))
    assert [b["user_name"] for b in beans] == ["b"]
    assert container.count_where(UserBean) == 2


def test_find_where_order_and_limit(container):
    for name in ("c", "a", "b"):
        make_user(container, name)
    beans = container.find_where(UserBean, "1=1", order_by="user_name", limit=2)
    assert [b["user_name"] for b in beans] == ["a", "b"]


def test_user_charge_usage_accumulates(container):
    user = make_user(container)
    user.charge_usage(10.0)
    user.charge_usage(5.0)
    assert user["accumulated_usage_seconds"] == 15.0


def test_user_negative_charge_rejected(container):
    user = make_user(container)
    with pytest.raises(BeanStateError):
        user.charge_usage(-1.0)


def test_user_priority_bounds(container):
    user = make_user(container)
    user.set_priority(0.0)
    user.set_priority(1.0)
    with pytest.raises(BeanStateError):
        user.set_priority(1.5)


def test_job_legal_lifecycle(container):
    job = make_job(container)
    job.mark_matched()
    job.mark_running()
    assert job["attempts"] == 1
    job.mark_completed()
    fresh = container.find(JobBean, job.pk_value)
    assert fresh["state"] == "completed"


def test_job_illegal_transition_rejected(container):
    job = make_job(container)
    with pytest.raises(BeanStateError):
        job.mark_running()  # idle -> running skips matched
    job.mark_matched()
    job.mark_running()
    with pytest.raises(BeanStateError):
        job.mark_matched()  # running -> matched is illegal


def test_job_drop_cycle(container):
    job = make_job(container)
    job.mark_matched()
    job.mark_running()
    job.mark_idle_again()
    assert job["state"] == "idle"
    job.mark_matched()
    job.mark_running()
    assert job["attempts"] == 2


def test_job_dependency_edges(container):
    job = make_job(container)
    container.db.executemany(
        "INSERT INTO job_dependencies (job_id, depends_on_job_id) VALUES (?, ?)",
        [(job.pk_value, dep) for dep in (5, 3, 9)],
    )
    assert job.depends_on_ids() == [3, 5, 9]
    lone = make_job(container)
    assert lone.depends_on_ids() == []


def test_create_batch_inserts_without_beans(container):
    before = container.instantiations
    created = container.create_batch(
        UserBean,
        [
            {"user_name": "a", "created_at": 0.0},
            {"user_name": "b", "created_at": 0.0},
        ],
    )
    assert created == 2
    assert container.instantiations == before  # footnote 1: no bean per tuple
    assert container.count_where(UserBean) == 2
    assert container.db.counts.batches >= 1


def test_create_batch_rejects_heterogeneous_rows(container):
    with pytest.raises(DatabaseError):
        container.create_batch(
            UserBean,
            [
                {"user_name": "a", "created_at": 0.0},
                {"created_at": 0.0, "user_name": "b"},
            ],
        )


def test_create_batch_rejects_unknown_columns(container):
    with pytest.raises(DatabaseError):
        container.create_batch(
            UserBean,
            [{"user_name": "a", "created_at": 0.0, "cmd) SELECT": "x"}],
        )


def test_job_invariant_rejects_bad_update(container):
    job = make_job(container)
    with pytest.raises(BeanConsistencyError):
        job.update(attempts=-1)


def test_machine_heartbeat_and_boot_history(container):
    machine = container.create(
        MachineBean, machine_name="m1", cores=2, memory_mb=512, vm_count=4,
        state="alive", last_heartbeat=0.0, boot_count=0,
    )
    machine.record_boot(1.0)
    machine.record_boot(100.0)
    assert machine["boot_count"] == 2
    rows = container.db.query_all(
        "SELECT * FROM machine_boot_history WHERE machine_name = 'm1'"
    )
    assert len(rows) == 2
    machine.heartbeat(123.0)
    assert machine["last_heartbeat"] == 123.0


def test_machine_missing_transition(container):
    machine = container.create(
        MachineBean, machine_name="m1", state="alive", last_heartbeat=0.0,
    )
    machine.mark_missing()
    assert machine["state"] == "missing"
    with pytest.raises(BeanStateError):
        machine.mark_missing()
    machine.heartbeat(5.0)
    assert machine["state"] == "alive"


def test_vm_state_validation(container):
    container.create(MachineBean, machine_name="m1", last_heartbeat=0.0)
    vm = container.create(
        VmBean, vm_id="vm0@m1", machine_name="m1", state="idle", last_update=0.0
    )
    vm.set_state("busy", 4.0)
    assert vm["state"] == "busy"
    with pytest.raises(BeanStateError):
        vm.set_state("exploded", 5.0)


def test_policy_change_writes_history(container):
    policy = container.create(
        PolicyBean, policy_name="p", policy_value="1", scope="pool",
        updated_at=0.0, updated_by="system",
    )
    policy.change_value("2", 10.0, changed_by="admin")
    policy.change_value("3", 20.0, changed_by="admin")
    history = container.db.query_all(
        "SELECT old_value, new_value FROM config_history ORDER BY change_id"
    )
    assert [(r["old_value"], r["new_value"]) for r in history] == [("1", "2"), ("2", "3")]
    assert policy["policy_value"] == "3"


def test_container_counts_instantiations(container):
    make_user(container, "a")
    before = container.instantiations
    container.find(UserBean, "a")
    container.find_where(UserBean, "1=1")
    assert container.instantiations == before + 2
