"""Crash-recovery fuzzing of the WAL-backed storage engine.

The differential harness (``test_differential.py``) pins *state
equivalence*: replaying one workload on two engines yields identical
tables.  This harness extends the discipline to *crash equivalence*, the
contract that makes :class:`WalStorageEngine` durable rather than merely
file-backed:

    kill the engine at **any** byte of its write-ahead-log stream — or
    at any step of a checkpoint — and a fresh engine recovering the
    directory must reach a state **byte-identical** to a reference
    memory engine that executed exactly the committed prefix of the
    workload.

Mechanics: each seeded trace drives the full service stack (the
differential fuzzer's op vocabulary) with every op in its own
transaction, so "committed prefix" is transaction-granular — an op
counts as committed exactly when its commit record became fully durable,
which is exactly when the ``transaction()`` scope exited cleanly.  A
calibration run learns the trace's total log length and every commit
record's end offset; kill points are then drawn both uniformly at random
and *targeted* (one byte short of a commit record — a torn commit — and
exactly at one), plus dedicated trials that die inside each checkpoint
step.  After each kill the engine object is dead (every call raises
:class:`SimulatedCrash`); recovery constructs a fresh engine on the
directory and the recovered tables are compared against the reference
snapshot taken after the same number of committed ops.

Failing trials dump the WAL directory plus a seed/kill-point manifest to
``CRASH_FUZZ_ARTIFACT_DIR`` (CI uploads it), so any counterexample
replays locally from the artifact alone.

Alongside the fuzzer: hypothesis properties for the CRC32 log framing
(round-trip, torn-tail and corruption behaviour) and for
checkpoint/replay idempotence (recovering a directory is a fixpoint),
and the satellite pins — poisoned plan-cache artifacts never reach the
log, and the durability counters obey the merge/delta algebra.
"""

import json
import os
import random
import shutil

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import JobSpec
from repro.condorj2.database import Database
from repro.condorj2.schema import TABLES
from repro.condorj2.storage import StatementCounts, WalStorageEngine
from repro.condorj2.storage.memory import _FailedPlan
from repro.condorj2.storage.wal import (
    CrashInjector,
    FsyncPolicy,
    SimulatedCrash,
    encode_record,
    frame_record,
    iter_frames,
    scan_records,
)

from tests.condorj2.test_differential import Pool, TraceRunner, dump_tables

# ---------------------------------------------------------------------------
# knobs (env-tunable so CI can scale the fuzzer without code changes)
# ---------------------------------------------------------------------------

#: Seeded traces (acceptance floor: 25).
TRACE_COUNT = int(os.environ.get("CRASH_FUZZ_TRACES", "25"))
#: Randomized kill points per trace (floor: TRACE_COUNT * KILLS >= 200).
KILLS_PER_TRACE = int(os.environ.get("CRASH_FUZZ_KILLS", "8"))
#: Ops per trace (every op is one transaction).
TRACE_LENGTH = int(os.environ.get("CRASH_FUZZ_TRACE_LENGTH", "16"))
#: Where failing trials dump their WAL directory + manifest.
ARTIFACT_DIR = os.environ.get("CRASH_FUZZ_ARTIFACT_DIR", "")

#: Traces that additionally die inside each checkpoint step.
CHECKPOINT_TRACE_COUNT = 10
#: Tiny rotation threshold so short traces checkpoint several times.
CHECKPOINT_INTERVAL = 900


class WalPool(Pool):
    """The differential harness's service stack over a WAL engine."""

    def __init__(self, directory, injector=None, track=False):
        engine = WalStorageEngine(
            directory,
            injector=injector,
            track_commit_positions=track,
        )
        super().__init__("wal", database=Database(engine=engine))


class CrashTraceRunner(TraceRunner):
    """Single-pool trace with one transaction per op.

    ``completed`` counts ops whose transaction scope exited cleanly —
    under fsync-on-commit, exactly the ops whose commit record is fully
    durable in the log, i.e. the committed prefix the recovery contract
    is stated over.

    Job ids are drawn from a *per-runner* counter instead of the
    process-wide :func:`repro.cluster.job.next_job_id` allocator, so the
    calibration run, the reference run and every crash trial of one seed
    submit byte-identical jobs.
    """

    def __init__(self, seed, pool, on_committed=None):
        super().__init__(seed, [pool])
        self.completed = 0
        self.on_committed = on_committed
        self._job_ids = iter(range(1, 10 ** 6))

    def op_submit_batch(self):
        # Mirrors the base op rng-draw for rng-draw; only the job-id
        # source differs (deterministic per runner).
        specs = []
        for _ in range(self.rng.randint(1, 6)):
            spec = JobSpec(
                job_id=next(self._job_ids),
                owner=f"user{self.rng.randint(0, 3)}",
                run_seconds=round(self.rng.uniform(5.0, 120.0), 3),
            )
            if self.submitted_ids and self.rng.random() < 0.4:
                parents = self.rng.sample(
                    self.submitted_ids,
                    k=min(len(self.submitted_ids), self.rng.randint(1, 3)),
                )
                spec.depends_on = tuple(parents)
            specs.append(spec)
            self.submitted_ids.append(spec.job_id)
        for pool in self.pools:
            pool.submission.submit_jobs(specs, self.now)

    def run(self, steps):
        db = self.pools[0].db
        names = [name for name, weight, _ in self.OPS for _ in range(weight)]
        # Dispatch through *bound* methods so the op_submit_batch
        # override above is honored (OPS holds the base functions).
        by_name = {name: getattr(self, op.__name__)
                   for name, _, op in self.OPS}
        for op in (self.op_register_machine, self.op_submit_batch):
            self._tick()
            with db.transaction():
                op()
            self._op_done()
        for _ in range(steps):
            self._tick()
            name = self.rng.choice(names)
            with db.transaction():
                by_name[name]()
            self._op_done()

    def _op_done(self):
        self.completed += 1
        if self.on_committed is not None:
            self.on_committed(self)


# ---------------------------------------------------------------------------
# per-seed calibration + reference (computed once, shared by the trials)
# ---------------------------------------------------------------------------

_SEED_DATA = {}


def _seed_data(seed):
    """(total stream bytes, commit offsets, reference dumps per prefix).

    One clean WAL run learns the trace's log geometry; one memory-engine
    run records the reference table state after every committed op —
    ``dumps[k]`` is the expected state after a committed prefix of ``k``
    ops (``dumps[0]`` is the empty schema).
    """
    if seed in _SEED_DATA:
        return _SEED_DATA[seed]
    pool = WalPool(":memory:", track=True)
    try:
        runner = CrashTraceRunner(seed, pool)
        runner.run(TRACE_LENGTH)
        total = pool.db.engine.stream_pos
        commits = list(pool.db.engine.commit_positions)
    finally:
        pool.close()

    reference = Pool("memory")
    dumps = [dump_tables(reference.db)]
    try:
        runner = CrashTraceRunner(
            seed, reference,
            on_committed=lambda r: dumps.append(dump_tables(reference.db)),
        )
        runner.run(TRACE_LENGTH)
    finally:
        reference.close()
    _SEED_DATA[seed] = (total, commits, dumps)
    return _SEED_DATA[seed]


def _kill_points(seed, total, commits):
    """The trace's kill offsets: random bytes plus targeted torn/exact
    commit boundaries (every trace exercises a torn write)."""
    rng = random.Random(0xC0FFEE ^ seed)
    points = []
    if commits:
        last = rng.choice(commits)
        points.append(last - 1)  # torn commit record
        points.append(last)      # crash exactly at a commit boundary
        points.append(max(0, commits[0] - 2))  # early, mid-first-op
    while len(points) < KILLS_PER_TRACE:
        points.append(rng.randrange(0, max(total, 1)))
    return points[:KILLS_PER_TRACE]


def _dump_artifact(seed, kill, directory, completed, error):
    if not ARTIFACT_DIR:
        return
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    name = f"seed{seed}-kill{kill}"
    target = os.path.join(ARTIFACT_DIR, name)
    shutil.rmtree(target, ignore_errors=True)
    shutil.copytree(directory, target)
    manifest = {
        "seed": seed,
        "kill": kill,
        "trace_length": TRACE_LENGTH,
        "completed_ops": completed,
        "error": str(error),
    }
    with open(os.path.join(ARTIFACT_DIR, name + ".json"), "w") as handle:
        json.dump(manifest, handle, indent=2)


def _run_trial(seed, dumps, tmp_path, label, **engine_kwargs):
    """Kill one trace with ``engine_kwargs``'s injector, recover, and
    assert crash equivalence against the reference prefix dumps."""
    directory = str(tmp_path / label)
    pool = WalPool(directory, **engine_kwargs)
    completed = TRACE_LENGTH + 2
    try:
        runner = CrashTraceRunner(seed, pool)
        try:
            runner.run(TRACE_LENGTH)
        except SimulatedCrash:
            completed = runner.completed
            # the dead engine must refuse further work
            with pytest.raises(SimulatedCrash):
                pool.db.execute("SELECT user_name FROM users")
    finally:
        engine_file = pool.db.engine._file
        if engine_file is not None and not engine_file.closed:
            engine_file.close()

    recovered = WalPool(directory)
    try:
        state = dump_tables(recovered.db)
        expected = dumps[completed]
        for table in TABLES:
            assert repr(state[table]) == repr(expected[table]), (
                f"seed {seed} {label}: {table} diverges after recovery "
                f"(committed prefix = {completed} ops)"
            )
        # the recovered engine must serve writes again
        recovered.db.execute(
            "INSERT INTO users (user_name, created_at) VALUES (?, ?)",
            (f"post-recovery-{label}", 0.0),
        )
    except AssertionError as exc:
        _dump_artifact(seed, label, directory, completed, exc)
        raise
    finally:
        recovered.close()


# ---------------------------------------------------------------------------
# the fuzzer
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(TRACE_COUNT))
def test_crash_recovery_randomized_kill_points(seed, tmp_path):
    """Kill one seeded trace at KILLS_PER_TRACE log offsets — torn
    commits, exact boundaries and uniform random bytes — and require
    committed-prefix equivalence after every recovery."""
    total, commits, dumps = _seed_data(seed)
    assert commits, "trace produced no commit records — not a useful trace"
    for kill in _kill_points(seed, total, commits):
        _run_trial(
            seed, dumps, tmp_path, f"kill{kill}",
            injector=CrashInjector(crash_after_bytes=kill),
        )


@pytest.mark.parametrize("seed", range(CHECKPOINT_TRACE_COUNT))
@pytest.mark.parametrize("step", CrashInjector.CHECKPOINT_STEPS)
def test_crash_recovery_mid_checkpoint(seed, step, tmp_path):
    """Die inside every checkpoint step (half-written snapshot, around
    the atomic rename, around segment rotation) and recover."""
    _, _, dumps = _seed_data(seed)
    directory = str(tmp_path / step)
    pool = WalPool(directory, injector=CrashInjector(checkpoint_step=(1, step)))
    pool.db.engine.checkpoint_interval_bytes = CHECKPOINT_INTERVAL
    completed = TRACE_LENGTH + 2
    crashed = False
    try:
        runner = CrashTraceRunner(seed, pool)
        try:
            runner.run(TRACE_LENGTH)
        except SimulatedCrash:
            crashed = True
            completed = runner.completed
    finally:
        engine_file = pool.db.engine._file
        if engine_file is not None and not engine_file.closed:
            engine_file.close()
    if not crashed:
        # Short trace never reached its second checkpoint — still a
        # valid (uncrashed) run; equivalence must hold regardless.
        assert pool.db.engine.counts.checkpoints <= 1
    recovered = WalPool(directory)
    try:
        state = dump_tables(recovered.db)
        expected = dumps[completed]
        for table in TABLES:
            assert repr(state[table]) == repr(expected[table]), (
                f"seed {seed} checkpoint step {step!r}: {table} diverges "
                f"(committed prefix = {completed} ops)"
            )
    except AssertionError as exc:
        _dump_artifact(seed, f"ckpt-{step}", directory, completed, exc)
        raise
    finally:
        recovered.close()


def test_fuzzer_meets_acceptance_floor():
    """ISSUE 7 floor: >=200 randomized kill trials across >=25 traces,
    with torn-write and mid-checkpoint kills included."""
    assert TRACE_COUNT >= 25
    assert TRACE_COUNT * KILLS_PER_TRACE >= 200
    assert CHECKPOINT_TRACE_COUNT * len(CrashInjector.CHECKPOINT_STEPS) >= 40


# ---------------------------------------------------------------------------
# hypothesis properties: log framing
# ---------------------------------------------------------------------------

_json_scalars = st.one_of(
    st.none(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
_records = st.lists(
    st.dictionaries(st.text(max_size=8), _json_scalars, max_size=4),
    max_size=8,
)


@settings(deadline=None, max_examples=60)
@given(_records)
def test_framing_round_trips(records):
    """encode -> concatenate -> scan recovers every record, cleanly."""
    data = b"".join(encode_record(record) for record in records)
    decoded, clean = scan_records(data)
    assert clean
    assert [obj for obj, _ in decoded] == records
    # frame end offsets are strictly increasing and end at len(data)
    ends = [end for _, end in decoded]
    assert ends == sorted(set(ends))
    if records:
        assert ends[-1] == len(data)


@settings(deadline=None, max_examples=60)
@given(_records, st.data())
def test_framing_torn_tail_is_a_clean_prefix(records, data):
    """Truncating the stream anywhere yields a prefix of the records and
    never a phantom record."""
    stream = b"".join(encode_record(record) for record in records)
    if not stream:
        return
    cut = data.draw(st.integers(min_value=0, max_value=len(stream) - 1))
    decoded, clean = scan_records(stream[:cut])
    whole, _ = scan_records(stream)
    assert [obj for obj, _ in decoded] == [obj for obj, _ in whole][
        : len(decoded)
    ]
    # the cut byte is strictly inside some record, so the scan is dirty
    # unless the cut landed exactly on a frame boundary
    boundaries = {0} | {end for _, end in whole}
    assert clean == (cut in boundaries)


@settings(deadline=None, max_examples=60)
@given(_records, st.data())
def test_framing_detects_corruption(records, data):
    """Flipping any byte invalidates that record's frame: the scan stops
    at (or before) the corrupted record instead of yielding garbage."""
    stream = b"".join(encode_record(record) for record in records)
    if not stream:
        return
    index = data.draw(st.integers(min_value=0, max_value=len(stream) - 1))
    corrupt = bytearray(stream)
    corrupt[index] ^= 0xFF
    decoded, _ = scan_records(bytes(corrupt))
    whole, _ = scan_records(stream)
    victims = [end for _, end in whole if end > index]
    intact = len(whole) - len(victims)
    # everything before the corrupted record survives; the corrupted
    # record itself never decodes to a *different* valid object at its
    # original position
    for position in range(min(intact, len(decoded))):
        assert decoded[position][0] == whole[position][0]
    assert len(decoded) <= len(whole)


def test_frame_record_rejects_nothing_but_crc_mismatch():
    """A record whose CRC header lies is dropped, not raised."""
    good = encode_record({"t": "commit"})
    bad = bytearray(good)
    bad[-1] ^= 0x01  # corrupt payload, keep header
    records, clean = scan_records(bytes(bad))
    assert records == [] and not clean
    assert list(iter_frames(frame_record(b"x")))  # sanity: helper works


# ---------------------------------------------------------------------------
# hypothesis property: checkpoint/replay idempotence
# ---------------------------------------------------------------------------

@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=0, max_value=2 ** 32 - 1),
       st.booleans())
def test_checkpoint_and_replay_are_idempotent(seed, force_checkpoint):
    """Recovering a directory is a fixpoint: recover once, recover
    again (with or without an intervening checkpoint) — same tables,
    and a clean log tail every time."""
    rng = random.Random(seed)
    import tempfile
    directory = tempfile.mkdtemp(prefix="condorj2-walprop-")
    try:
        engine = WalStorageEngine(directory)
        for index in range(rng.randint(1, 12)):
            engine.execute(
                "INSERT INTO users (user_name, created_at) VALUES (?, ?)",
                (f"u{index}", float(index)),
            )
            if rng.random() < 0.3:
                engine.execute(
                    "UPDATE users SET priority = ? WHERE user_name = ?",
                    (round(rng.random(), 3), f"u{rng.randint(0, index)}"),
                )
        if force_checkpoint:
            engine.checkpoint()
        engine.close()

        first = WalStorageEngine(directory)
        state_one = {
            table: first.execute(
                f"SELECT * FROM {table}"  # sql-ident: table
            ).fetchall()
            for table in ("users",)
        }
        first.close()

        second = WalStorageEngine(directory)
        state_two = {
            table: second.execute(
                f"SELECT * FROM {table}"  # sql-ident: table
            ).fetchall()
            for table in ("users",)
        }
        # a second recovery replays nothing new and drops nothing
        assert second.last_recovery is None or (
            second.last_recovery.tail_bytes_dropped == 0
        )
        second.close()
        assert repr(state_one) == repr(state_two)
    finally:
        shutil.rmtree(directory, ignore_errors=True)


# ---------------------------------------------------------------------------
# satellites: plan-cache poisoning, durability counters
# ---------------------------------------------------------------------------

def test_failed_plans_never_reach_the_log(tmp_path):
    """A poisoned ``_FailedPlan`` cache artifact (cached compile error)
    raises on every use but must leave zero trace in the WAL: replaying
    the log after a crash cannot re-poison or replay it."""
    directory = str(tmp_path / "poison")
    engine = WalStorageEngine(directory)
    bad_sql = "INSERT INTO users (no_such_column) VALUES (?)"
    for _ in range(3):
        with pytest.raises(Exception):
            engine.execute(bad_sql, ("x",))
    # the poisoned artifact is cached (one miss, then hits) ...
    assert isinstance(engine.plan_cache.peek(bad_sql), _FailedPlan)
    # ... but nothing was appended for it
    assert engine.counts.wal_appends == 0
    engine.execute(
        "INSERT INTO users (user_name, created_at) VALUES (?, ?)",
        ("ok", 1.0),
    )
    assert engine.counts.wal_appends == 1
    engine.close()

    recovered = WalStorageEngine(directory)
    assert recovered.counts.wal_replays == 1
    assert recovered.last_recovery.records_scanned == 1
    # recovery rebuilt state without ever compiling the poisoned SQL
    assert recovered.plan_cache.peek(bad_sql) is None
    rows = recovered.execute("SELECT user_name FROM users").fetchall()
    assert [row[0] for row in rows] == ["ok"]
    recovered.close()


def test_plan_cache_eviction_under_wal(tmp_path):
    """Plan-cache eviction churn on the WAL engine must not disturb the
    log: evicting and recompiling plans adds no records."""
    engine = WalStorageEngine(str(tmp_path / "evict"), statement_cache_size=4)
    engine.execute(
        "INSERT INTO users (user_name, created_at) VALUES (?, ?)",
        ("u", 1.0),
    )
    appends = engine.counts.wal_appends
    # churn the tiny cache with distinct SELECT texts
    for index in range(12):
        engine.execute(
            f"SELECT priority FROM users WHERE created_at < {index + 2}.0"
        )
    assert engine.plan_cache.evictions > 0
    assert engine.counts.wal_appends == appends, (
        "read-only cache churn appended WAL records"
    )
    engine.close()


def test_durability_counters_merge_and_delta():
    """The new fsync/replay/append/checkpoint counters obey the same
    merge/delta algebra as every other StatementCounts field."""
    left = StatementCounts(wal_appends=3, wal_replays=1, fsyncs=2,
                           checkpoints=1, commits=5)
    right = StatementCounts(wal_appends=4, wal_replays=2, fsyncs=7,
                            checkpoints=0, commits=1)
    merged = left.merge(right)
    assert merged.wal_appends == 7
    assert merged.wal_replays == 3
    assert merged.fsyncs == 9
    assert merged.checkpoints == 1
    assert merged.commits == 6
    # delta inverts merge
    back = merged.delta(right)
    assert back == left
    # snapshot round-trips the durability ledger
    assert left.snapshot() == left


def test_wal_counters_observed_end_to_end(tmp_path):
    """fsync policy drives the fsyncs counter; recovery drives replays."""
    directory = str(tmp_path / "counts")
    engine = WalStorageEngine(
        directory, fsync_policy=FsyncPolicy(mode="interval", interval=3)
    )
    for index in range(7):
        engine.execute(
            "INSERT INTO users (user_name, created_at) VALUES (?, ?)",
            (f"u{index}", float(index)),
        )
    assert engine.counts.wal_appends == 7
    assert engine.counts.fsyncs == 2  # commits 3 and 6 under interval=3
    engine.close()
    recovered = WalStorageEngine(directory)
    assert recovered.counts.wal_replays == 7
    never = WalStorageEngine(
        str(tmp_path / "never"), fsync_policy=FsyncPolicy(mode="never")
    )
    never.execute(
        "INSERT INTO users (user_name, created_at) VALUES (?, ?)", ("x", 1.0)
    )
    assert never.counts.fsyncs == 0
    never.close()
    recovered.close()
