"""Cost-shape invariants pinned on *every* storage backend.

The claims that make CondorJ2's scalability story: the scheduling pass is
two statement dispatches regardless of queue depth, and an idle heartbeat
costs a fixed, small number of statements (the per-beat MATCHINFO SELECT
is skipped when the server-side per-machine dirty flag says nothing is
pending).  Each invariant is parametrized over the engines — SQLite,
memory, and the WAL-durable engine — so a backend cannot satisfy the
contract accidentally, and adding durability cannot change the statement
shape the cost model prices.
"""

import pytest

from repro.cluster import JobSpec
from repro.condorj2.beans import BeanContainer
from repro.condorj2.database import Database
from repro.condorj2.logic import (
    HeartbeatService,
    LifecycleService,
    SchedulingService,
    SubmissionService,
)

BACKENDS = ("sqlite", "memory", "wal")


def build_services(backend):
    container = BeanContainer(Database(backend=backend))
    submission = SubmissionService(container)
    scheduling = SchedulingService(container)
    lifecycle = LifecycleService(container)
    heartbeat = HeartbeatService(container, scheduling, lifecycle)
    return container, submission, scheduling, lifecycle, heartbeat


def register(heartbeat, name="m1", vm_count=4, now=0.0):
    heartbeat.register_machine({"name": name, "vm_count": vm_count}, now)


# ----------------------------------------------------------------------
# the 2-statements-per-pass invariant
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("depth", (50, 800))
def test_scheduling_pass_is_two_statements(backend, depth):
    container, submission, scheduling, _, heartbeat = build_services(backend)
    for machine in range(4):
        register(heartbeat, f"m{machine}", vm_count=4)
    submission.submit_jobs(
        [JobSpec(owner=f"u{i % 5}") for i in range(depth)], now=0.0
    )
    before = container.db.counts.snapshot()
    created = scheduling.run_pass(now=1.0)
    delta = container.db.counts.delta(before)
    assert created == 16
    assert delta.statements == 2  # one INSERT..SELECT, one set UPDATE
    assert delta.commits == 1
    assert delta.insert == 16 and delta.update == 16  # per-row charges
    assert delta.total() == 32


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_pass_is_one_statement(backend):
    container, _, scheduling, _, _ = build_services(backend)
    before = container.db.counts.snapshot()
    assert scheduling.run_pass(now=1.0) == 0
    delta = container.db.counts.delta(before)
    assert delta.statements == 1  # the probe INSERT found nothing
    assert delta.total() == 1
    # The per-table ledger records *actual* rows, so the no-op pass
    # writes zero match rows — which is exactly what lets the heartbeat
    # dirty flag treat it as "nothing changed".
    assert delta.table_writes("matches") == 0


# ----------------------------------------------------------------------
# the idle-heartbeat dirty flag
# ----------------------------------------------------------------------

def _beat(heartbeat, machine, now):
    return heartbeat.process(
        {"machine": machine, "vms": [], "events": []}, now
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_idle_beat_statement_count_is_pinned(backend):
    """Steady-state idle beats skip the MATCHINFO SELECT: 3 statements
    (machine refresh, idle-VM probe, no-op pass INSERT) instead of 5."""
    container, _, scheduling, _, heartbeat = build_services(backend)
    register(heartbeat, "m1", vm_count=2)
    _beat(heartbeat, "m1", now=1.0)  # first beat pays the full price
    skipped_before = heartbeat.matchinfo_selects_skipped
    before = container.db.counts.snapshot()
    response = _beat(heartbeat, "m1", now=2.0)
    delta = container.db.counts.delta(before)
    assert response["status"] == "OK"
    assert delta.statements == 3
    assert delta.select == 1  # only the idle-VM probe
    assert heartbeat.matchinfo_selects_skipped == skipped_before + 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_dirty_flag_never_hides_fresh_matches(backend):
    """A match created by any path re-arms the machine's MATCHINFO probe."""
    container, submission, scheduling, _, heartbeat = build_services(backend)
    heartbeat.inline_scheduling = False
    register(heartbeat, "m1", vm_count=1)
    register(heartbeat, "m2", vm_count=1)
    assert _beat(heartbeat, "m1", now=1.0)["status"] == "OK"  # marked clean
    submission.submit_jobs([JobSpec(), JobSpec()], now=2.0)
    scheduling.run_pass(now=3.0)  # a server-side pass, not m1's beat
    response = _beat(heartbeat, "m1", now=4.0)
    assert response["status"] == "MATCHINFO"
    assert len(response["matches"]) == 1
    # m2 was never marked clean and sees its match as well
    assert _beat(heartbeat, "m2", now=5.0)["status"] == "MATCHINFO"


@pytest.mark.parametrize("backend", BACKENDS)
def test_dirty_flag_rearms_after_accept_and_drop(backend):
    container, submission, scheduling, lifecycle, heartbeat = \
        build_services(backend)
    register(heartbeat, "m1", vm_count=1)
    submission.submit_jobs([JobSpec()], now=0.0)
    response = _beat(heartbeat, "m1", now=1.0)
    assert response["status"] == "MATCHINFO"
    match = response["matches"][0]
    lifecycle.accept_match(match["job_id"], match["vm_id"], now=2.0)
    # The accept deleted the match tuple (a write): the next beat probes
    # again, finds nothing, and re-marks the machine clean.
    skipped = heartbeat.matchinfo_selects_skipped
    response = _beat(heartbeat, "m1", now=3.0)
    assert response["status"] == "OK"
    assert heartbeat.matchinfo_selects_skipped == skipped
    # A drop frees the VM and requeues the job; the following beat's
    # inline pass creates a fresh match that must be delivered.
    lifecycle.report_drop(match["job_id"], match["vm_id"], now=4.0)
    response = _beat(heartbeat, "m1", now=5.0)
    assert response["status"] == "MATCHINFO"


@pytest.mark.parametrize("backend", BACKENDS)
def test_rollback_invalidates_clean_marks(backend):
    """A rollback restores rows without reverting the write counter, so
    it must invalidate every clean mark — otherwise a match deleted in
    an aborted transaction could stay hidden after being restored."""
    container, submission, scheduling, _, heartbeat = build_services(backend)
    register(heartbeat, "m1", vm_count=1)
    submission.submit_jobs([JobSpec()], now=0.0)
    response = _beat(heartbeat, "m1", now=1.0)
    assert response["status"] == "MATCHINFO"
    job_id = response["matches"][0]["job_id"]
    # Delete the match inside a transaction, observe empty (mark set),
    # then abort: the match row comes back but the counters do not move.
    db = container.db
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.execute("DELETE FROM matches WHERE job_id = ?", (job_id,))
            assert heartbeat._pending_matches("m1") == []
            raise RuntimeError("abort")
    assert db.table_count("matches") == 1
    response = _beat(heartbeat, "m1", now=2.0)
    assert response["status"] == "MATCHINFO"  # not hidden by a stale mark


@pytest.mark.parametrize("backend", BACKENDS)
def test_idle_pool_sql_shrinks_with_dirty_flag(backend):
    """Fifty idle beats cost 2 fewer SELECT dispatches each than the
    pre-fix path (the MATCHINFO SELECT plus its re-check after the
    inline pass)."""
    container, _, _, _, heartbeat = build_services(backend)
    register(heartbeat, "m1", vm_count=2)
    _beat(heartbeat, "m1", now=0.5)
    before = container.db.counts.snapshot()
    for beat in range(50):
        _beat(heartbeat, "m1", now=1.0 + beat)
    delta = container.db.counts.delta(before)
    assert delta.statements == 3 * 50
    assert delta.select == 50
    assert heartbeat.matchinfo_selects_skipped >= 100
