"""Integration tests for the assembled CondorJ2 system."""

import pytest

from repro.cluster import ClusterSpec, RELIABLE_EXECUTION
from repro.condorj2 import CondorJ2System
from repro.condorj2.startd import StartdConfig
from repro.workload import fixed_length_batch, mixed_batch, two_stage_workflow


def small_system(**kwargs):
    defaults = dict(
        cluster=ClusterSpec(physical_nodes=3, vms_per_node=2,
                            dual_core_fraction=0.0, speed_jitter=0.0),
        seed=5,
        execution=RELIABLE_EXECUTION,
    )
    defaults.update(kwargs)
    return CondorJ2System(**defaults)


def test_full_workload_completes():
    system = small_system()
    system.submit_at(0.0, fixed_length_batch(18, 30.0))
    system.run_until_complete(expected_jobs=18, max_seconds=3600.0)
    assert system.completed_count() == 18
    # Operational tables are empty again (Table 2, step 15).
    assert system.cas.db.table_count("jobs") == 0
    assert system.cas.db.table_count("runs") == 0
    assert system.cas.db.table_count("matches") == 0
    assert system.cas.db.table_count("job_history") == 18


def test_machines_register_and_heartbeat():
    system = small_system()
    system.start()
    system.sim.run(until=10.0)
    assert system.cas.db.table_count("machines") == 3
    assert system.cas.db.table_count("vms") == 6
    assert system.cas.db.table_count("machine_boot_history") == 3
    last = system.cas.db.scalar("SELECT MIN(last_heartbeat) FROM machines")
    system.sim.run(until=200.0)
    assert system.cas.db.scalar("SELECT MIN(last_heartbeat) FROM machines") > last


def test_pull_model_no_server_initiated_messages():
    system = small_system(record_trace=True)
    system.submit_at(0.0, fixed_length_batch(6, 20.0))
    system.run_until_complete(expected_jobs=6, max_seconds=1200.0)
    startd_bound = [
        r for r in system.trace.records
        if not r.local and r.src_kind == "cas" and r.dst_kind == "startd"
    ]
    # The CAS never initiates: every cas->startd record is a response
    # (requests/responses are recorded once, at request time, src=caller).
    assert startd_bound == []


def test_jobs_survive_drops_and_complete():
    from repro.cluster import ExecutionModel

    flaky = ExecutionModel(
        setup_cpu_seconds=0.2, setup_disk_seconds=0.3,
        teardown_cpu_seconds=0.1, teardown_disk_seconds=0.1,
        timeout_seconds=0.9, jitter_fraction=0.8,
        heavy_tail_prob=0.2, heavy_tail_factor=3.0,
        churn_disk_seconds_per_start=0.0,
    )
    system = small_system(execution=flaky, seed=9)
    system.submit_at(0.0, fixed_length_batch(12, 20.0))
    system.run_until_complete(expected_jobs=12, max_seconds=7200.0)
    assert system.completed_count() == 12
    assert system.log.count("job_dropped") > 0  # drops happened and healed


def test_mixed_workload_dependency_free_ordering():
    system = small_system()
    system.submit_at(0.0, mixed_batch(8, 2, short_seconds=20.0, long_seconds=60.0))
    system.run_until_complete(expected_jobs=10, max_seconds=3600.0)
    assert system.completed_count() == 10


def test_workflow_dependencies_enforced_end_to_end():
    system = small_system()
    wf = two_stage_workflow(stage1_count=4, stage2_count=1, fan_in=4,
                            stage1_seconds=20.0, stage2_seconds=30.0)
    system.submit_at(0.0, wf.jobs)
    system.run_until_complete(expected_jobs=5, max_seconds=3600.0)
    history = system.cas.db.query_all(
        "SELECT job_id, started_at FROM job_history"
    )
    started = {row["job_id"]: row["started_at"] for row in history}
    stage2 = [j for j in wf.jobs if j.depends_on][0]
    for dep in stage2.depends_on:
        completed_at = system.cas.db.scalar(
            "SELECT completed_at FROM job_history WHERE job_id = ?", (dep,)
        )
        assert started[stage2.job_id] >= completed_at


def test_cpu_metering_produces_samples():
    system = small_system()
    system.submit_at(0.0, fixed_length_batch(6, 30.0))
    system.run_until_complete(expected_jobs=6, max_seconds=1200.0)
    samples = system.server_utilization()
    assert samples
    assert any(s.fraction("user") > 0 for s in samples)


def test_startd_full_state_refresh_cycle():
    config = StartdConfig(idle_poll_seconds=1.0, full_state_every_beats=3)
    system = small_system(startd_config=config)
    system.start()
    system.sim.run(until=30.0)
    # VM states on the server match reality (all idle, nothing running).
    states = [r["state"] for r in system.cas.db.query_all("SELECT state FROM vms")]
    assert states == ["idle"] * 6


def test_deterministic_given_seed():
    def fingerprint(seed):
        system = small_system(seed=seed)
        system.submit_at(0.0, fixed_length_batch(10, 25.0))
        system.run_until_complete(expected_jobs=10, max_seconds=3600.0)
        return tuple(round(t, 6) for t in system.completion_times())

    assert fingerprint(3) == fingerprint(3)


def test_user_client_submit_via_web_service():
    system = small_system()
    system.start()
    process = system.sim.spawn(
        system.user.call("submitJob", {"owner": "bob", "run_seconds": 15.0})
    )
    system.sim.run(until=5.0)
    assert process.done
    assert process.result["status"] == "OK"
    assert system.cas.db.table_count("jobs") == 1


def test_unknown_operation_returns_fault():
    from repro.condorj2.web.soap import SoapFault

    system = small_system()
    system.start()
    process = system.sim.spawn(system.user.call("noSuchOp", {}))
    system.sim.run(until=5.0)
    assert isinstance(process.error, SoapFault)
