"""Tier-1 tests for the lifecycle/transaction analysis tier.

Four properties are enforced here:

* **static soundness** — an unmutated copy of the service layer yields
  zero lifecycle/transaction errors, and the interprocedural protection
  fixpoint reaches the verdicts the code is written against
  (``record_boot``/``change_value`` are protected by their callers);
* **sensitivity** — seeded mutations (an illegal transition target, a
  stripped state guard, a transition split across two transaction
  scopes) are each caught by exactly the intended rule with exact
  file:line provenance;
* **runtime cross-check** — a full service workload's observed
  transition ledger is a subset of the declared lifecycle graphs on all
  three storage backends, the ledgers agree across backends, and the
  coverage report walks a meaningful share of the declared edges;
* **CLI surface** — ``--report transitions`` emits the per-table graph
  in text and JSON and ``--dot`` writes Graphviz output.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.cluster import JobSpec
from repro.condorj2.analysis import analyze
from repro.condorj2.analysis.cli import main
from repro.condorj2.analysis.lifecycle import transition_coverage
from repro.condorj2.analysis.txn import build_txn_model
from repro.condorj2.beans import BeanContainer
from repro.condorj2.database import Database
from repro.condorj2.datamgmt import DatasetService
from repro.condorj2.logic import (
    HeartbeatService,
    LifecycleService,
    SchedulingService,
    SubmissionService,
)
from repro.condorj2.schema import LIFECYCLES

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro" / "condorj2"


# ----------------------------------------------------------------------
# static tier: seeded mutations into a copy of the service layer
# ----------------------------------------------------------------------

def _copy_logic(tmp_path):
    """An analyzable tree holding a private copy of ``logic/``."""
    root = tmp_path / "tree"
    shutil.copytree(PACKAGE_ROOT / "logic", root / "logic")
    return root


def _mutate(root, old, new, filename="logic/lifecycle.py"):
    target = root / filename
    text = target.read_text()
    assert old in text, f"mutation anchor not found: {old!r}"
    target.write_text(text.replace(old, new))


def _line_of(root, needle, filename="logic/lifecycle.py"):
    """1-based line of ``needle`` — keeps assertions drift-proof."""
    lines = (root / filename).read_text().splitlines()
    hits = [index for index, line in enumerate(lines, 1) if needle in line]
    assert len(hits) == 1, f"{needle!r} matched lines {hits}"
    return hits[0]


def _error_sites(root):
    _corpus, findings = analyze(root)
    return {(f.rule, f.file, f.line) for f in findings
            if f.severity == "error"}


def test_unmutated_service_copy_is_clean(tmp_path):
    assert _error_sites(_copy_logic(tmp_path)) == set()


def test_seeded_illegal_transition_is_caught(tmp_path):
    """acceptMatch retargeted to 'completed' under the 'matched' guard."""
    root = _copy_logic(tmp_path)
    _mutate(root, "SET state = 'running', attempts",
            "SET state = 'completed', attempts")
    line = _line_of(root, "updated = self.container.db.execute(")
    assert ("illegal-transition", "logic/lifecycle.py", line) \
        in _error_sites(root)


def test_seeded_unguarded_state_write_is_caught(tmp_path):
    """The VM claim stripped of its state guard writes blind."""
    root = _copy_logic(tmp_path)
    _mutate(root, "WHERE vm_id = ? AND state = 'idle'", "WHERE vm_id = ?")
    line = _line_of(root, "claimed = self.container.db.execute(")
    assert ("unguarded-state-write", "logic/lifecycle.py", line) \
        in _error_sites(root)


_SPLIT_FUNCTION = '''

def requeue_job_split(container, job_id, now):
    """Seeded defect: the transition and its cleanup commit separately."""
    with container.db.transaction():
        container.db.execute(  # seeded-split-write
            "UPDATE jobs SET state = 'idle' "
            "WHERE job_id = ? AND state IN ('matched', 'running')",
            (job_id,),
        )
    with container.db.transaction():
        container.db.execute(
            "DELETE FROM matches WHERE job_id = ?", (job_id,)
        )
'''


def test_seeded_cross_commit_transition_split_is_caught(tmp_path):
    root = _copy_logic(tmp_path)
    target = root / "logic" / "lifecycle.py"
    target.write_text(target.read_text() + _SPLIT_FUNCTION)
    line = _line_of(root, "# seeded-split-write")
    assert ("txn-split-transition", "logic/lifecycle.py", line) \
        in _error_sites(root)


_UNPROTECTED_FIXTURE = '''\
class BrokenService:
    """Seeded defect: two-table requeue with no transaction scope."""

    def __init__(self, container):
        self.container = container

    def requeue(self, job_id, now):
        self.container.db.execute(  # seeded-unprotected-write
            "DELETE FROM runs WHERE job_id = ?", (job_id,))
        self.container.db.execute(
            "UPDATE jobs SET state = 'idle' "
            "WHERE job_id = ? AND state IN ('matched', 'running')",
            (job_id,),
        )
'''


def test_seeded_unprotected_multi_table_write_is_caught(tmp_path):
    root = _copy_logic(tmp_path)
    (root / "logic" / "broken.py").write_text(_UNPROTECTED_FIXTURE)
    line = _line_of(root, "# seeded-unprotected-write",
                    filename="logic/broken.py")
    assert ("txn-unprotected-write", "logic/broken.py", line) \
        in _error_sites(root)


# ----------------------------------------------------------------------
# static tier: interprocedural protection on the real tree
# ----------------------------------------------------------------------

def test_txn_model_protection_fixpoint_on_real_tree():
    model = build_txn_model(PACKAGE_ROOT)
    protected = {
        "beans/entities.py:MachineBean.record_boot",
        "beans/entities.py:PolicyBean.change_value",
        "logic/heartbeat.py:HeartbeatService._apply_events",
    }
    for qualname in protected:
        assert model.protected[qualname], qualname
    # Service entry points have no resolvable callers: they must carry
    # their own scopes, and the fixpoint must not assume otherwise.
    accept = "logic/lifecycle.py:LifecycleService.accept_match"
    assert model.protected.get(accept) is False
    assert model.exposure[accept] == set()


# ----------------------------------------------------------------------
# runtime cross-check: observed transitions ⊆ declared graphs
# ----------------------------------------------------------------------

def _drive_workload(db):
    """Every lifecycle table through its paces, services only."""
    container = BeanContainer(db)
    submission = SubmissionService(container)
    scheduling = SchedulingService(container)
    lifecycle = LifecycleService(container)
    heartbeat = HeartbeatService(container, scheduling, lifecycle)
    datasets = DatasetService(container)

    now = 1000.0
    heartbeat.register_machine({"name": "m00", "vm_count": 2}, now)
    heartbeat.register_machine({"name": "m01", "vm_count": 1}, now)
    submission.submit_jobs(
        [JobSpec(owner="alice", run_seconds=5.0) for _ in range(3)], now)
    scheduling.run_pass(now)
    pending = scheduling.pending_matches_for_machine("m00")
    pending += scheduling.pending_matches_for_machine("m01")
    assert pending, "workload produced no matches"
    for row in pending:
        lifecycle.accept_match(row["job_id"], row["vm_id"], now + 1)

    done = pending[0]
    machine = done["vm_id"].split("@", 1)[1]
    heartbeat.process(
        {"machine": machine, "vms": [],
         "events": [{"kind": "started", "job_id": done["job_id"],
                     "vm_id": done["vm_id"]}]}, now + 5)
    heartbeat.process(
        {"machine": machine, "vms": [],
         "events": [{"kind": "completed", "job_id": done["job_id"],
                     "vm_id": done["vm_id"]}]}, now + 10)
    if len(pending) > 1:
        lifecycle.report_drop(pending[1]["job_id"], pending[1]["vm_id"],
                              now + 11, reason="test-drop")
    heartbeat.mark_missing_machines(now + 500, timeout_seconds=60.0)
    heartbeat.process({"machine": "m01", "vms": [], "events": []}, now + 600)

    dataset = datasets.register_dataset("genome", "alice", 10.0, now)
    datasets.add_replica(dataset, "m00", now)
    datasets.add_replica(dataset, "m01", now, state="transferring")
    datasets.invalidate_replica(dataset, "m00")
    return {table: dict(edges)
            for table, edges in db.counts.transitions.items()}


def _backend_db(backend, tmp_path):
    if backend == "wal":
        return Database(path=str(tmp_path / "pool-wal"), backend="wal")
    if backend == "sqlite":
        return Database()
    return Database(backend="memory")


@pytest.mark.parametrize("backend", ["sqlite", "memory", "wal"])
def test_observed_transitions_subset_of_declared(backend, tmp_path):
    db = _backend_db(backend, tmp_path)
    try:
        observed = _drive_workload(db)
    finally:
        db.close()
    assert observed, "workload recorded no transitions"
    for table, edges in observed.items():
        lifecycle = LIFECYCLES[table]
        for edge, rows in edges.items():
            source, target = edge.split("->", 1)
            assert rows > 0, (table, edge)
            assert lifecycle.allows(source, target), (
                f"{table}: observed {edge} not in the declared lifecycle")
    report = transition_coverage(observed)
    assert all(entry["illegal"] == [] for entry in report.values())
    # The workload is rich enough to be a meaningful cross-check.
    assert len(report["jobs"]["covered"]) >= 4
    assert len(report["vms"]["covered"]) >= 3
    assert ("missing", "alive") in report["machines"]["covered"]
    assert ("valid", "stale") in report["dataset_replicas"]["covered"]


def test_transition_ledger_is_backend_invariant(tmp_path):
    """The differential contract extends to the transitions ledger."""
    ledgers = {}
    for backend in ("sqlite", "memory", "wal"):
        db = _backend_db(backend, tmp_path)
        try:
            ledgers[backend] = _drive_workload(db)
        finally:
            db.close()
    assert ledgers["sqlite"] == ledgers["memory"] == ledgers["wal"]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

def test_cli_transitions_report(tmp_path, capsys):
    out = tmp_path / "graph.json"
    dot = tmp_path / "graph.dot"
    code = main(["--report", "transitions",
                 "--output", str(out), "--dot", str(dot)])
    assert code == 0
    text = capsys.readouterr().out
    assert "jobs (state)" in text
    assert "idle -> matched" in text
    document = json.loads(out.read_text())
    tables = {entry["table"] for entry in document["tables"]}
    assert tables == {"jobs", "machines", "vms", "dataset_replicas"}
    jobs = next(entry for entry in document["tables"]
                if entry["table"] == "jobs")
    implied = {(e["from"], e["to"]) for e in jobs["implied"]}
    assert ("matched", "running") in implied
    dot_text = dot.read_text()
    assert dot_text.startswith("digraph lifecycles")
    assert '"jobs.matched" -> "jobs.running"' in dot_text


def test_cli_transitions_json_format(capsys):
    assert main(["--report", "transitions", "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
