"""Unit tests for the application-logic layer services."""

import pytest

from repro.cluster import JobSpec
from repro.condorj2.beans import BeanContainer, BeanStateError
from repro.condorj2.beans.base import BeanNotFound
from repro.condorj2.database import Database
from repro.condorj2.logic import (
    ConfigService,
    HeartbeatService,
    LifecycleService,
    ReportService,
    SchedulingService,
    SubmissionService,
)


@pytest.fixture
def services():
    container = BeanContainer(Database())
    submission = SubmissionService(container)
    scheduling = SchedulingService(container)
    lifecycle = LifecycleService(container)
    heartbeat = HeartbeatService(container, scheduling, lifecycle)
    reports = ReportService(container.db)
    config = ConfigService(container)
    return container, submission, scheduling, lifecycle, heartbeat, reports, config


def register_machine(heartbeat, name="m1", vm_count=2, now=0.0):
    heartbeat.register_machine(
        {"name": name, "arch": "INTEL", "opsys": "LINUX", "cores": 1,
         "memory_mb": 512, "vm_count": vm_count},
        now,
    )


# ----------------------------------------------------------------------
# submission
# ----------------------------------------------------------------------
def test_submit_job_inserts_tuple(services):
    container, submission, *_ = services
    job_id = submission.submit_job(JobSpec(owner="alice", run_seconds=30.0), now=1.0)
    row = container.db.query_one("SELECT * FROM jobs WHERE job_id = ?", (job_id,))
    assert row["owner"] == "alice"
    assert row["state"] == "idle"
    assert container.db.table_count("users") == 1


def test_submit_jobs_batch(services):
    container, submission, *_ = services
    ids = submission.submit_jobs([JobSpec(), JobSpec(), JobSpec()], now=0.0)
    assert len(ids) == 3
    assert container.db.table_count("jobs") == 3


def test_submit_workflow_links_members(services):
    container, submission, *_ = services
    specs = [JobSpec(owner="w"), JobSpec(owner="w")]
    wf_id = submission.submit_workflow("etl", "w", specs, now=0.0)
    rows = container.db.query_all(
        "SELECT workflow_id FROM jobs WHERE workflow_id = ?", (wf_id,)
    )
    assert len(rows) == 2


def test_remove_idle_job(services):
    container, submission, *_ = services
    job_id = submission.submit_job(JobSpec(), now=0.0)
    submission.remove_job(job_id)
    assert container.db.table_count("jobs") == 0


def test_remove_running_job_rejected(services):
    container, submission, scheduling, lifecycle, heartbeat, *_ = services
    register_machine(heartbeat)
    job_id = submission.submit_job(JobSpec(), now=0.0)
    scheduling.run_pass(now=1.0)
    match = container.db.query_one("SELECT vm_id FROM matches WHERE job_id = ?", (job_id,))
    lifecycle.accept_match(job_id, match["vm_id"], now=2.0)
    with pytest.raises(BeanStateError):
        submission.remove_job(job_id)


# ----------------------------------------------------------------------
# scheduling
# ----------------------------------------------------------------------
def test_scheduling_pass_creates_matches(services):
    container, submission, scheduling, _, heartbeat, *_ = services
    register_machine(heartbeat, vm_count=2)
    submission.submit_jobs([JobSpec(), JobSpec(), JobSpec()], now=0.0)
    created = scheduling.run_pass(now=1.0)
    assert created == 2  # limited by idle VMs
    assert container.db.table_count("matches") == 2
    states = [r["state"] for r in container.db.query_all(
        "SELECT state FROM jobs ORDER BY job_id")]
    assert states.count("matched") == 2
    assert states.count("idle") == 1


def test_scheduling_pass_idempotent_when_no_capacity(services):
    _, submission, scheduling, _, heartbeat, *_ = services
    register_machine(heartbeat, vm_count=1)
    submission.submit_jobs([JobSpec()], now=0.0)
    assert scheduling.run_pass(now=1.0) == 1
    assert scheduling.run_pass(now=2.0) == 0  # vm already matched


def test_scheduling_respects_user_priority(services):
    container, submission, scheduling, _, heartbeat, *_ = services
    register_machine(heartbeat, vm_count=1)
    low = JobSpec(owner="low-priority")
    high = JobSpec(owner="high-priority")
    submission.submit_jobs([low, high], now=0.0)
    container.db.execute(
        "UPDATE users SET priority = 0.9 WHERE user_name = 'low-priority'"
    )
    container.db.execute(
        "UPDATE users SET priority = 0.1 WHERE user_name = 'high-priority'"
    )
    scheduling.run_pass(now=1.0)
    match = container.db.query_one("SELECT job_id FROM matches")
    assert match["job_id"] == high.job_id


def test_scheduling_defers_dependent_jobs(services):
    container, submission, scheduling, lifecycle, heartbeat, *_ = services
    register_machine(heartbeat, vm_count=2)
    parent = JobSpec()
    child = JobSpec(depends_on=(parent.job_id,))
    submission.submit_jobs([parent, child], now=0.0)
    scheduling.run_pass(now=1.0)
    matched = [r["job_id"] for r in container.db.query_all("SELECT job_id FROM matches")]
    assert matched == [parent.job_id]
    # Complete the parent; the child becomes eligible.
    match = container.db.query_one("SELECT vm_id FROM matches")
    lifecycle.accept_match(parent.job_id, match["vm_id"], now=2.0)
    lifecycle.complete_job(parent.job_id, match["vm_id"], now=3.0)
    scheduling.run_pass(now=4.0)
    matched = [r["job_id"] for r in container.db.query_all("SELECT job_id FROM matches")]
    assert child.job_id in matched


def test_pending_matches_scoped_to_machine(services):
    container, submission, scheduling, _, heartbeat, *_ = services
    register_machine(heartbeat, "m1", vm_count=1)
    register_machine(heartbeat, "m2", vm_count=1)
    submission.submit_jobs([JobSpec(), JobSpec()], now=0.0)
    scheduling.run_pass(now=1.0)
    m1_matches = scheduling.pending_matches_for_machine("m1")
    m2_matches = scheduling.pending_matches_for_machine("m2")
    assert len(m1_matches) == 1
    assert len(m2_matches) == 1
    assert m1_matches[0]["vm_id"].endswith("@m1")


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def full_cycle(services, now=0.0):
    container, submission, scheduling, lifecycle, heartbeat, *_ = services
    register_machine(heartbeat)
    job_id = submission.submit_job(JobSpec(owner="alice", run_seconds=60.0), now)
    scheduling.run_pass(now + 1)
    match = container.db.query_one("SELECT vm_id FROM matches WHERE job_id = ?", (job_id,))
    return job_id, match["vm_id"]


def test_accept_match_moves_match_to_run(services):
    container, *_ = services
    lifecycle = services[3]
    job_id, vm_id = full_cycle(services)
    response = lifecycle.accept_match(job_id, vm_id, now=2.0)
    assert response["status"] == "OK"
    assert container.db.table_count("matches") == 0
    assert container.db.table_count("runs") == 1
    job = container.db.query_one("SELECT state FROM jobs WHERE job_id = ?", (job_id,))
    assert job["state"] == "running"


def test_accept_match_unknown_pair_raises(services):
    lifecycle = services[3]
    with pytest.raises(BeanNotFound):
        lifecycle.accept_match(999, "vm0@nowhere", now=0.0)


def test_accept_match_rejects_job_not_in_matched_state(services):
    """The jobs guard is a lifecycle check, and its failure is atomic:
    the match and run tuples written earlier in the transaction roll
    back (the paper's footnote-7 guarantee)."""
    container = services[0]
    lifecycle = services[3]
    job_id, vm_id = full_cycle(services)
    container.db.execute(
        "UPDATE jobs SET state = 'idle' "
        "WHERE job_id = ? AND state = 'matched'",
        (job_id,),
    )
    with pytest.raises(BeanStateError, match="illegal transition to 'running'"):
        lifecycle.accept_match(job_id, vm_id, now=2.0)
    assert container.db.table_count("matches") == 1
    assert container.db.table_count("runs") == 0
    job = container.db.query_one(
        "SELECT state FROM jobs WHERE job_id = ?", (job_id,))
    assert job["state"] == "idle"


def test_accept_match_rejects_non_idle_vm(services):
    container = services[0]
    lifecycle = services[3]
    job_id, vm_id = full_cycle(services)
    container.db.execute(
        "UPDATE vms SET state = 'offline' WHERE vm_id = ? AND state = 'idle'",
        (vm_id,),
    )
    with pytest.raises(BeanStateError, match="cannot claim a non-idle slot"):
        lifecycle.accept_match(job_id, vm_id, now=2.0)
    # The whole acceptMatch rolled back: the job is still matched.
    job = container.db.query_one(
        "SELECT state FROM jobs WHERE job_id = ?", (job_id,))
    assert job["state"] == "matched"
    assert container.db.table_count("matches") == 1


def test_complete_job_performs_post_execution_processing(services):
    container = services[0]
    lifecycle = services[3]
    job_id, vm_id = full_cycle(services)
    lifecycle.accept_match(job_id, vm_id, now=2.0)
    lifecycle.complete_job(job_id, vm_id, now=62.0)
    # Operational tuples gone (Table 2, step 15).
    assert container.db.table_count("jobs") == 0
    assert container.db.table_count("runs") == 0
    # History + accounting written.
    history = container.db.query_one("SELECT * FROM job_history WHERE job_id = ?", (job_id,))
    assert history["final_state"] == "completed"
    assert history["completed_at"] == 62.0
    accounting = container.db.query_one("SELECT * FROM accounting WHERE job_id = ?", (job_id,))
    assert accounting["wall_seconds"] == pytest.approx(60.0)
    usage = container.db.scalar(
        "SELECT accumulated_usage_seconds FROM users WHERE user_name = 'alice'"
    )
    assert usage == pytest.approx(60.0)


def test_complete_unstarted_job_rejected(services):
    lifecycle = services[3]
    job_id, vm_id = full_cycle(services)
    with pytest.raises(BeanStateError):
        lifecycle.complete_job(job_id, vm_id, now=10.0)


def test_drop_requeues_job(services):
    container = services[0]
    lifecycle = services[3]
    job_id, vm_id = full_cycle(services)
    lifecycle.accept_match(job_id, vm_id, now=2.0)
    lifecycle.report_drop(job_id, vm_id, now=3.0, reason="setup-timeout")
    job = container.db.query_one("SELECT state FROM jobs WHERE job_id = ?", (job_id,))
    assert job["state"] == "idle"
    assert container.db.table_count("runs") == 0
    vm = container.db.query_one("SELECT state FROM vms WHERE vm_id = ?", (vm_id,))
    assert vm["state"] == "idle"


# ----------------------------------------------------------------------
# heartbeat
# ----------------------------------------------------------------------
def test_register_machine_creates_tuples_and_boot_history(services):
    container = services[0]
    heartbeat = services[4]
    register_machine(heartbeat, "m9", vm_count=3)
    assert container.db.table_count("machines") == 1
    assert container.db.table_count("vms") == 3
    assert container.db.table_count("machine_boot_history") == 1
    register_machine(heartbeat, "m9", vm_count=3, now=100.0)  # reboot
    assert container.db.table_count("machine_boot_history") == 2
    assert container.db.table_count("vms") == 3  # no duplicates


def test_heartbeat_updates_machine_and_vms(services):
    container = services[0]
    heartbeat = services[4]
    register_machine(heartbeat, "m1", vm_count=2)
    response = heartbeat.process(
        {"machine": "m1",
         "vms": [{"vm_id": "vm0@m1", "state": "busy"}],
         "events": []},
        now=50.0,
    )
    assert response["status"] == "OK"
    machine = container.db.query_one("SELECT last_heartbeat FROM machines")
    assert machine["last_heartbeat"] == 50.0
    vm = container.db.query_one("SELECT state FROM vms WHERE vm_id = 'vm0@m1'")
    assert vm["state"] == "busy"


def test_heartbeat_returns_matchinfo(services):
    _, submission, scheduling, _, heartbeat, *_ = services
    register_machine(heartbeat, "m1", vm_count=1)
    submission.submit_job(JobSpec(run_seconds=10.0), now=0.0)
    response = heartbeat.process({"machine": "m1", "vms": [], "events": []}, now=1.0)
    # inline scheduling produced a match for the idle VM
    assert response["status"] == "MATCHINFO"
    assert len(response["matches"]) == 1
    assert response["matches"][0]["run_seconds"] == 10.0


def test_heartbeat_without_inline_scheduling_waits_for_pass(services):
    container, submission, scheduling, lifecycle, heartbeat, *_ = services
    heartbeat.inline_scheduling = False
    register_machine(heartbeat, "m1", vm_count=1)
    submission.submit_job(JobSpec(), now=0.0)
    response = heartbeat.process({"machine": "m1", "vms": [], "events": []}, now=1.0)
    assert response["status"] == "OK"
    scheduling.run_pass(now=2.0)
    response = heartbeat.process({"machine": "m1", "vms": [], "events": []}, now=3.0)
    assert response["status"] == "MATCHINFO"


def test_heartbeat_completion_event_flow(services):
    container, submission, scheduling, lifecycle, heartbeat, *_ = services
    job_id, vm_id = full_cycle(services)
    lifecycle.accept_match(job_id, vm_id, now=2.0)
    response = heartbeat.process(
        {"machine": "m1", "vms": [],
         "events": [{"kind": "completed", "job_id": job_id, "vm_id": vm_id}]},
        now=62.0,
    )
    assert container.db.table_count("job_history") == 1
    assert container.db.table_count("jobs") == 0


def test_heartbeat_unknown_event_kind_raises(services):
    heartbeat = services[4]
    register_machine(heartbeat)
    with pytest.raises(ValueError):
        heartbeat.process(
            {"machine": "m1", "vms": [],
             "events": [{"kind": "exploded", "job_id": 1, "vm_id": "x"}]},
            now=1.0,
        )


def test_mark_missing_machines(services):
    container = services[0]
    heartbeat = services[4]
    register_machine(heartbeat, "m1", now=0.0)
    register_machine(heartbeat, "m2", now=0.0)
    heartbeat.process({"machine": "m2", "vms": [], "events": []}, now=1000.0)
    marked = heartbeat.mark_missing_machines(now=1000.0, timeout_seconds=900.0)
    assert marked == 1
    states = {r["machine_name"]: r["state"] for r in
              container.db.query_all("SELECT machine_name, state FROM machines")}
    assert states == {"m1": "missing", "m2": "alive"}


def test_heartbeat_revives_missing_machine(services):
    container = services[0]
    heartbeat = services[4]
    register_machine(heartbeat, "m1", now=0.0)
    heartbeat.mark_missing_machines(now=1000.0, timeout_seconds=900.0)
    heartbeat.process({"machine": "m1", "vms": [], "events": []}, now=1001.0)
    machine = container.db.query_one("SELECT state FROM machines")
    assert machine["state"] == "alive"


def test_heartbeat_unknown_machine_raises(services):
    heartbeat = services[4]
    with pytest.raises(BeanNotFound):
        heartbeat.process({"machine": "ghost", "vms": [], "events": []},
                          now=1.0)


def test_heartbeat_cannot_revive_quarantined_machine(services):
    """An operator 'offline' is sticky: the refresh guard rejects the
    beat instead of silently resurrecting the machine."""
    container = services[0]
    heartbeat = services[4]
    register_machine(heartbeat, "m1", now=0.0)
    container.db.execute(
        "UPDATE machines SET state = 'offline' "
        "WHERE machine_name = ? AND state IN ('alive', 'missing')",
        ("m1",),
    )
    with pytest.raises(BeanStateError, match="offline"):
        heartbeat.process({"machine": "m1", "vms": [], "events": []},
                          now=5.0)
    machine = container.db.query_one("SELECT state FROM machines")
    assert machine["state"] == "offline"


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
def test_queue_summary_groups_by_state(services):
    _, submission, scheduling, _, heartbeat, reports, _ = services
    register_machine(heartbeat, vm_count=1)
    submission.submit_jobs([JobSpec(), JobSpec()], now=0.0)
    scheduling.run_pass(now=1.0)
    summary = reports.queue_summary()
    assert summary["idle"] == 1
    assert summary["matched"] == 1


def test_pool_status_counts(services):
    _, submission, scheduling, _, heartbeat, reports, _ = services
    register_machine(heartbeat, "m1", vm_count=2)
    status = reports.pool_status()
    assert status["machines_total"] == 1
    assert status["machines_alive"] == 1
    assert status["vms_idle"] == 2


def test_user_summary_and_job_detail(services):
    container, submission, scheduling, lifecycle, heartbeat, reports, _ = services
    job_id, vm_id = full_cycle(services)
    assert reports.user_summary("alice")["idle"] == 0  # job is matched
    detail = reports.job_detail(job_id)
    assert detail["source"] == "queue"
    lifecycle.accept_match(job_id, vm_id, now=2.0)
    lifecycle.complete_job(job_id, vm_id, now=62.0)
    detail = reports.job_detail(job_id)
    assert detail["source"] == "history"
    assert reports.job_detail(987654) is None
    assert reports.user_summary("alice")["completed"] == 1


def test_accounting_by_user_aggregates(services):
    container, submission, scheduling, lifecycle, heartbeat, reports, _ = services
    job_id, vm_id = full_cycle(services)
    lifecycle.accept_match(job_id, vm_id, now=2.0)
    lifecycle.complete_job(job_id, vm_id, now=62.0)
    rows = reports.accounting_by_user()
    assert rows[0]["owner"] == "alice"
    assert rows[0]["jobs"] == 1


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
def test_config_defaults_and_typed_access(services):
    config = services[6]
    config.install_defaults(now=0.0)
    assert config.get("scheduling_interval_seconds") == "2.0"
    assert config.get_float("scheduling_interval_seconds", 99.0) == 2.0
    assert config.get("missing-policy") is None
    assert config.get("missing-policy", "fallback") == "fallback"
    assert config.get_float("missing-policy", 7.5) == 7.5


def test_config_set_records_history(services):
    config = services[6]
    config.set("x", "1", now=1.0)
    config.set("x", "2", now=2.0)
    history = config.history("x")
    assert [h["new_value"] for h in history] == ["1", "2"]
    assert history[1]["old_value"] == "1"


def test_config_point_in_time_reconstruction(services):
    config = services[6]
    config.set("x", "1", now=10.0)
    config.set("x", "2", now=20.0)
    config.set("x", "3", now=30.0)
    assert config.value_at("x", 5.0) is None
    assert config.value_at("x", 15.0) == "1"
    assert config.value_at("x", 25.0) == "2"
    assert config.value_at("x", 35.0) == "3"
