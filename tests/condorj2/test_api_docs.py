"""API.md freshness: the committed reference must match the registry.

``API.md`` is generated from the contract table; editing a contract
without regenerating the document (or editing the document by hand)
fails here.  Regenerate with::

    PYTHONPATH=src python -m repro.condorj2.api.docs > API.md
"""

from pathlib import Path

from repro.condorj2.api.contracts import CONTRACTS
from repro.condorj2.api.docs import render_api_markdown

API_MD = Path(__file__).resolve().parents[2] / "API.md"


def test_api_md_is_fresh():
    assert API_MD.exists(), "API.md is missing; regenerate it"
    committed = API_MD.read_text(encoding="utf-8")
    assert committed == render_api_markdown(), (
        "API.md is stale: regenerate with "
        "`PYTHONPATH=src python -m repro.condorj2.api.docs > API.md`"
    )


def test_api_md_documents_every_operation_and_fault_code():
    document = render_api_markdown()
    for contract in CONTRACTS:
        assert f"`{contract.name}`" in document
        assert f"(v{contract.version})" in document
    for code in ("MALFORMED", "UNKNOWN_OP", "VALIDATION", "CONFLICT",
                 "INTERNAL"):
        assert f"`{code}`" in document


def test_rendering_is_deterministic():
    assert render_api_markdown() == render_api_markdown()
