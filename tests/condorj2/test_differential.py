"""Cross-backend differential fuzzing of the storage engines.

The paper's thesis — cluster state is just data — is falsifiable only if
the CAS logic is correct against *any* conformant store.  This harness
makes the claim testable: seeded random workload traces (submission
batches with random DAG edges, heartbeats, completions, drops, failures,
scheduling passes, liveness sweeps) are replayed in lockstep against the
SQLite engine and the dict-backed memory engine, asserting after every
step that

* the scheduler's match set is identical,
* the centralized :class:`StatementCounts` are *equal* — same row work,
  same dispatches, same batches, same commits, same statement-cache
  hits/misses, same per-table traffic,

and at the end of the trace that the full table state is byte-identical
(same values, same types, down to SQLite's write-time type affinity and
rowid assignment).
"""

import random

import pytest

from repro.cluster import JobSpec
from repro.condorj2.beans import BeanContainer
from repro.condorj2.database import Database
from repro.condorj2.logic import (
    ConfigService,
    HeartbeatService,
    LifecycleService,
    SchedulingService,
    SubmissionService,
)
from repro.condorj2.schema import TABLES

BACKENDS = ("sqlite", "memory")

#: Number of seeded traces the fuzzer replays (acceptance floor: 50).
TRACE_COUNT = 50
#: Operations per trace.
TRACE_LENGTH = 28


class Pool:
    """One backend's full service stack.

    ``database`` lets a caller stack the services over a pre-configured
    :class:`Database` (the crash-recovery harness wires in WAL engines
    with crash injectors); by default the backend name picks the engine.
    """

    def __init__(self, backend, database=None):
        self.backend = backend
        self.container = BeanContainer(database or Database(backend=backend))
        self.db = self.container.db
        self.submission = SubmissionService(self.container)
        self.scheduling = SchedulingService(self.container)
        self.lifecycle = LifecycleService(self.container)
        self.heartbeat = HeartbeatService(
            self.container, self.scheduling, self.lifecycle
        )
        self.config = ConfigService(self.container)

    def close(self):
        self.db.close()


def dump_tables(db):
    """Full table state as a canonical, type-sensitive structure."""
    state = {}
    for table in TABLES:
        rows = [
            tuple(sorted(dict(row).items()))
            for row in db.query_all(f"SELECT * FROM {table}")  # sql-ident: table
        ]
        state[table] = sorted(rows, key=repr)
    return state


def match_set(db):
    return sorted(
        (row["job_id"], row["vm_id"])
        for row in db.query_all("SELECT job_id, vm_id FROM matches")
    )


class TraceRunner:
    """Generates one op at a time from the observed state of pool A and
    applies it to every pool identically."""

    def __init__(self, seed, pools):
        self.rng = random.Random(seed)
        self.pools = pools
        self.now = 0.0
        self.machines = []
        self.submitted_ids = []

    # -- op helpers -----------------------------------------------------
    def _observed(self, sql, params=()):
        """Observation query, issued to *every* pool so the statement
        accounting stays symmetric; decisions use the first pool's rows."""
        rows = [pool.db.query_all(sql, params) for pool in self.pools]
        return rows[0]

    def _tick(self):
        self.now += self.rng.uniform(0.5, 30.0)

    def op_register_machine(self):
        name = f"m{len(self.machines):02d}"
        self.machines.append(name)
        description = {
            "name": name,
            "vm_count": self.rng.randint(1, 4),
            "cores": self.rng.randint(1, 4),
            "memory_mb": self.rng.choice([256, 512, 1024]),
        }
        for pool in self.pools:
            pool.heartbeat.register_machine(dict(description), self.now)

    def op_submit_batch(self):
        specs = []
        for _ in range(self.rng.randint(1, 6)):
            spec = JobSpec(
                owner=f"user{self.rng.randint(0, 3)}",
                run_seconds=round(self.rng.uniform(5.0, 120.0), 3),
            )
            if self.submitted_ids and self.rng.random() < 0.4:
                parents = self.rng.sample(
                    self.submitted_ids,
                    k=min(len(self.submitted_ids), self.rng.randint(1, 3)),
                )
                spec.depends_on = tuple(parents)
            specs.append(spec)
            self.submitted_ids.append(spec.job_id)
        for pool in self.pools:
            pool.submission.submit_jobs(specs, self.now)

    def op_scheduling_pass(self):
        created = {pool.scheduling.run_pass(self.now) for pool in self.pools}
        assert len(created) == 1, "engines disagree on matches created"

    def op_heartbeat(self):
        if not self.machines:
            return
        machine = self.rng.choice(self.machines)
        vms = self._observed(
            "SELECT vm_id, state FROM vms WHERE machine_name = ?", (machine,)
        )
        payload_vms = [
            {"vm_id": row["vm_id"], "state": row["state"]}
            for row in vms
            if self.rng.random() < 0.5
        ]
        payload = {"machine": machine, "vms": payload_vms, "events": []}
        for pool in self.pools:
            pool.heartbeat.process(dict(payload), self.now)

    def op_accept_matches(self):
        rows = self._observed("SELECT job_id, vm_id FROM matches")
        pending = sorted((row["job_id"], row["vm_id"]) for row in rows)
        if not pending:
            return
        chosen = [p for p in pending if self.rng.random() < 0.7]
        for job_id, vm_id in chosen:
            for pool in self.pools:
                pool.lifecycle.accept_match(job_id, vm_id, self.now)

    def op_complete_jobs(self):
        runs = self._observed("SELECT job_id, vm_id FROM runs")
        if not runs:
            return
        pairs = [
            (row["job_id"], row["vm_id"])
            for row in runs
            if self.rng.random() < 0.6
        ]
        if not pairs:
            return
        machine = pairs[0][1].split("@", 1)[1]
        events = [
            {"kind": "completed", "job_id": job_id, "vm_id": vm_id}
            for job_id, vm_id in pairs
        ]
        payload = {"machine": machine, "vms": [], "events": events}
        for pool in self.pools:
            pool.heartbeat.process(dict(payload), self.now)

    def op_drop_job(self):
        runs = self._observed("SELECT job_id, vm_id FROM runs")
        if not runs:
            return
        row = self.rng.choice(runs)
        for pool in self.pools:
            pool.lifecycle.report_drop(
                row["job_id"], row["vm_id"], self.now, reason="fuzz-drop"
            )

    def op_remove_job(self):
        idle = self._observed(
            "SELECT job_id FROM jobs WHERE state = 'idle'"
        )
        if not idle:
            return
        job_id = self.rng.choice(idle)["job_id"]
        for pool in self.pools:
            pool.submission.remove_job(job_id)

    def op_mark_missing(self):
        timeout = self.rng.uniform(10.0, 200.0)
        marked = {
            pool.heartbeat.mark_missing_machines(self.now, timeout)
            for pool in self.pools
        }
        assert len(marked) == 1, "engines disagree on missing machines"

    def op_config_change(self):
        name = self.rng.choice(["max_matches_per_pass", "fuzz_knob"])
        value = str(self.rng.randint(1, 1000))
        for pool in self.pools:
            pool.config.set(name, value, self.now, changed_by="fuzzer")

    OPS = (
        ("register", 1, op_register_machine),
        ("submit", 3, op_submit_batch),
        ("pass", 3, op_scheduling_pass),
        ("heartbeat", 2, op_heartbeat),
        ("accept", 3, op_accept_matches),
        ("complete", 3, op_complete_jobs),
        ("drop", 1, op_drop_job),
        ("remove", 1, op_remove_job),
        ("missing", 1, op_mark_missing),
        ("config", 1, op_config_change),
    )

    def run(self, steps):
        # Every trace starts with at least one machine and one batch.
        self.op_register_machine()
        self._tick()
        self.op_submit_batch()
        names = [name for name, weight, _ in self.OPS for _ in range(weight)]
        by_name = {name: op for name, _, op in self.OPS}
        for step in range(steps):
            self._tick()
            name = self.rng.choice(names)
            by_name[name](self)
            self._assert_step_equivalence(name, step)

    def _assert_step_equivalence(self, name, step):
        reference = self.pools[0]
        expected_matches = match_set(reference.db)
        expected_counts = reference.db.counts
        for pool in self.pools[1:]:
            assert match_set(pool.db) == expected_matches, (
                f"step {step} ({name}): match sets diverge "
                f"({reference.backend} vs {pool.backend})"
            )
            assert pool.db.counts == expected_counts, (
                f"step {step} ({name}): StatementCounts diverge "
                f"({reference.backend} vs {pool.backend})"
            )


@pytest.mark.parametrize("seed", range(TRACE_COUNT))
def test_differential_trace(seed):
    """Replay one seeded trace against every backend in lockstep."""
    pools = [Pool(backend) for backend in BACKENDS]
    try:
        runner = TraceRunner(seed, pools)
        runner.run(TRACE_LENGTH)
        reference = dump_tables(pools[0].db)
        reference_counts = pools[0].db.counts
        for pool in pools[1:]:
            state = dump_tables(pool.db)
            for table in TABLES:
                assert repr(state[table]) == repr(reference[table]), (
                    f"final state of {table} diverges "
                    f"({pools[0].backend} vs {pool.backend})"
                )
            assert pool.db.counts == reference_counts
    finally:
        for pool in pools:
            pool.close()


def test_trace_count_meets_acceptance_floor():
    assert TRACE_COUNT >= 50
