"""Unit tests for the CAS container mechanics and the pull-model startd."""

import pytest

from repro.cluster import ClusterSpec, RELIABLE_EXECUTION
from repro.condorj2 import CasCostModel, CondorJ2System
from repro.condorj2.database import StatementCounts
from repro.condorj2.startd import StartdConfig
from repro.workload import fixed_length_batch


def small_system(**kwargs):
    defaults = dict(
        cluster=ClusterSpec(physical_nodes=2, vms_per_node=2,
                            dual_core_fraction=0.0, speed_jitter=0.0),
        seed=13,
        execution=RELIABLE_EXECUTION,
    )
    defaults.update(kwargs)
    return CondorJ2System(**defaults)


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------
def test_parse_cost_scales_with_envelope_size():
    costs = CasCostModel()
    small = costs.parse_cost_seconds(512)
    large = costs.parse_cost_seconds(8192)
    assert large > small
    assert small >= costs.soap_parse_seconds


def test_sql_cost_counts_each_verb():
    costs = CasCostModel()
    delta = StatementCounts(select=2, insert=1, update=3, delete=1, commits=2)
    expected = (2 * costs.select_seconds + costs.insert_seconds
                + 3 * costs.update_seconds + costs.delete_seconds)
    assert costs.sql_cost_seconds(delta) == pytest.approx(expected)
    assert costs.io_cost_seconds(delta) == pytest.approx(2 * costs.commit_io_seconds)


# ----------------------------------------------------------------------
# CAS behaviour
# ----------------------------------------------------------------------
def test_cas_counts_requests_and_faults():
    system = small_system()
    system.start()
    ok = system.sim.spawn(system.user.call("poolStatus", {}))
    system.sim.run(until=5.0)
    assert ok.done and ok.error is None
    before_faults = system.cas.faults_returned
    bad = system.sim.spawn(system.user.call("acceptMatch",
                                            {"job_id": 999, "vm_id": "vm0@x"}))
    system.sim.run(until=10.0)
    assert bad.error is not None  # fault surfaced to the caller
    assert system.cas.faults_returned == before_faults + 1
    assert system.cas.requests_handled > 0


def test_cas_startup_charges_cpu():
    system = small_system()
    system.start()
    system.sim.run(until=120.0)
    startup = system.cas.costs.startup_cpu_seconds
    assert system.server_host.meter.total_seconds("user") >= startup * 0.9


def test_cas_db_background_runs_on_schedule():
    costs = CasCostModel(db_background_interval_seconds=100.0,
                         db_background_cpu_seconds=1.0,
                         db_background_io_seconds=0.5)
    system = small_system(costs=costs)
    system.start()
    system.sim.run(until=350.0)
    runs = system.log.times("db_background_run")
    assert runs == [pytest.approx(100.0), pytest.approx(200.0), pytest.approx(300.0)]


def test_registry_exposes_paper_operations():
    system = small_system()
    operations = system.cas.registry.operations()
    for op in ("heartbeat", "acceptMatch", "beginExecute", "submitJob",
               "registerMachine", "queueSummary", "setPolicy"):
        assert op in operations


def test_dispatch_counts_calls_per_operation():
    system = small_system()
    system.start()
    system.sim.run(until=10.0)
    assert system.cas.registry.calls.get("registerMachine") == 2
    assert system.cas.registry.calls.get("heartbeat", 0) >= 2


# ----------------------------------------------------------------------
# startd behaviour
# ----------------------------------------------------------------------
def test_startd_delta_vm_reporting():
    config = StartdConfig(idle_poll_seconds=1.0, full_state_every_beats=1000)
    system = small_system(startd_config=config)
    startd = system.startds[0]
    first = startd._vm_states_payload()
    assert len(first) == 2  # first beat reports everything
    second = startd._vm_states_payload()
    assert second == []     # nothing changed since
    startd.node.vms[0].state = type(startd.node.vms[0].state).BUSY
    third = startd._vm_states_payload()
    assert len(third) == 1
    assert third[0]["state"] == "busy"


def test_startd_full_refresh_every_n_beats():
    config = StartdConfig(full_state_every_beats=3)
    system = small_system(startd_config=config)
    startd = system.startds[0]
    sizes = [len(startd._vm_states_payload()) for _ in range(6)]
    # beats 1 and 4 are full (2 VMs); the rest are deltas (0 changes).
    assert sizes == [2, 0, 0, 2, 0, 0]


def test_startd_stop_halts_heartbeats():
    system = small_system()
    system.start()
    system.sim.run(until=5.0)
    victim = system.startds[0]
    count_before = system.cas.heartbeat.heartbeats_processed
    victim.stop()
    system.sim.run(until=200.0)
    # Only the surviving startd contributes further heartbeats.
    survivors = system.cas.heartbeat.heartbeats_processed - count_before
    assert survivors > 0
    last = system.cas.db.scalar(
        "SELECT last_heartbeat FROM machines WHERE machine_name = ?",
        (victim.node.name,),
    )
    assert last < 200.0 - 60.0  # the victim stopped reporting long ago


def test_startd_events_retried_after_transport_failure():
    """Events drained for a failed heartbeat are requeued, not lost."""
    system = small_system()
    startd = system.startds[0]
    startd._pending_events.append(
        {"kind": "completed", "job_id": 1, "vm_id": "vm0@x"}
    )
    payload = startd._heartbeat_payload()
    assert startd._pending_events == []
    # Simulate the retry path of _main_loop.
    startd._pending_events = payload["events"] + startd._pending_events
    assert len(startd._pending_events) == 1


def test_jobs_flow_through_small_pool_quickly():
    system = small_system()
    system.submit_at(0.0, fixed_length_batch(8, 15.0))
    system.run_until_complete(expected_jobs=8, max_seconds=600.0)
    assert system.completed_count() == 8
    # Pull model: jobs were delivered via heartbeat MATCHINFO + accept.
    assert system.cas.registry.calls.get("acceptMatch", 0) == 8
