"""Planner, compiled-plan cache and EXPLAIN tests.

Four concerns, matching the planner layer's contracts (DESIGN.md):

* unit tests for the pure planning rules in ``storage.planner`` —
  cardinality estimates, driver choice (stable on ties), join
  reordering for order-free contexts, EXISTS decorrelation accept and
  reject cases, and ROW_NUMBER/ORDER BY/LIMIT fusion detection;
* plan-cache semantics — a plan served from the cache returns exactly
  the rows a cold compile returns, both backends admit identically
  (equal ``StatementCounts`` ledgers), and repeated scheduling passes
  converge to a ≈100% hit rate (the perf property the compiled-plan
  cache exists for);
* ``engine.explain`` on both backends — a :class:`PlanNode` tree that
  renders, profiled execution on the memory engine reporting actual
  row counts, and profiled DML always rolled back and uncounted;
* semi-join NULL semantics — the decorrelated EXISTS probe must agree
  with SQLite when correlation keys are NULL on either side, including
  past the adaptive build threshold.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

import repro.condorj2.storage.planner as pl
import repro.condorj2.storage.sqlparser as sp
from repro.cluster import JobSpec
from repro.condorj2.beans import BeanContainer
from repro.condorj2.database import Database
from repro.condorj2.logic import (
    HeartbeatService,
    LifecycleService,
    SchedulingService,
    SubmissionService,
)

BACKENDS = ("sqlite", "memory")


# ----------------------------------------------------------------------
# planning rules (pure functions)
# ----------------------------------------------------------------------

class TestEstimates:
    def test_unique_column_estimates_one_row(self):
        assert pl.estimate_eq_rows(10_000, 3, unique=True) == 1.0

    def test_uniform_spread(self):
        assert pl.estimate_eq_rows(10_000, 13) == 10_000 / 13

    def test_empty_table(self):
        assert pl.estimate_eq_rows(0, 0) == 0.0

    def test_zero_distinct_does_not_divide_by_zero(self):
        assert pl.estimate_eq_rows(100, 0) == 100.0


class TestChooseDriver:
    def test_cheapest_candidate_wins(self):
        a = pl.DriverCandidate(0, "eq", "state", 500.0)
        b = pl.DriverCandidate(1, "eq", "owner", 3.0)
        assert pl.choose_driver([a, b]) is b

    def test_ties_keep_source_order(self):
        # Strict < comparison: equal estimates must not flap the plan.
        a = pl.DriverCandidate(0, "eq", "x", 5.0)
        b = pl.DriverCandidate(1, "eq", "y", 5.0)
        assert pl.choose_driver([a, b]) is a
        assert pl.choose_driver([b, a]) is b

    def test_no_candidates(self):
        assert pl.choose_driver([]) is None


class TestOrderSourcesByCardinality:
    OWN = {"a": ["x", "k"], "b": ["y", "k"]}

    def _parse(self, sql):
        return sp.parse(sql)

    def test_reorders_smallest_first(self):
        select = self._parse(
            "SELECT a.x FROM big a JOIN small b ON b.k = a.k")
        result = pl.order_sources_by_cardinality(
            select.sources, pl.split_conjuncts(select.where),
            self.OWN, {"a": 10_000.0, "b": 2.0})
        assert result is not None
        sources, conjuncts = result
        assert [src.alias for src in sources] == ["b", "a"]
        # The ON conjunct is re-attached so the plan stays an eq join.
        assert len(conjuncts) + sum(
            len(pl.split_conjuncts(src.on)) for src in sources) == 1

    def test_already_optimal_returns_none(self):
        select = self._parse(
            "SELECT a.x FROM small a JOIN big b ON b.k = a.k")
        assert pl.order_sources_by_cardinality(
            select.sources, [], self.OWN,
            {"a": 2.0, "b": 10_000.0}) is None

    def test_left_join_is_not_reorderable(self):
        select = self._parse(
            "SELECT a.x FROM big a LEFT JOIN small b ON b.k = a.k")
        assert pl.order_sources_by_cardinality(
            select.sources, [], self.OWN,
            {"a": 10_000.0, "b": 2.0}) is None

    def test_outer_reference_leaves_order_alone(self):
        select = self._parse(
            "SELECT a.x FROM big a JOIN small b ON b.k = a.k "
            "WHERE a.k = outer_t.k")
        assert pl.order_sources_by_cardinality(
            select.sources, pl.split_conjuncts(select.where),
            self.OWN, {"a": 10_000.0, "b": 2.0}) is None


class TestDecorrelateExists:
    OWN = {"d": ["job_id", "kind"]}

    def _sub(self, sql):
        return sp.parse(sql)

    def test_accepts_simple_correlation(self):
        sub = self._sub(
            "SELECT 1 FROM deps d WHERE d.job_id = j.job_id "
            "AND d.kind = 'hard'")
        deco = pl.decorrelate_exists(sub, self.OWN)
        assert deco is not None
        assert len(deco.pairs) == 1
        local, outer = deco.pairs[0]
        assert isinstance(local, sp.Col) and local.name == "job_id"
        assert isinstance(outer, sp.Col) and outer.table == "j"
        # The local-only conjunct stays as the build side's residual.
        build = deco.build_select
        assert build.where is not None
        assert len(build.items) == 1

    def test_rejects_non_equality_correlation(self):
        sub = self._sub("SELECT 1 FROM deps d WHERE d.job_id < j.job_id")
        assert pl.decorrelate_exists(sub, self.OWN) is None

    def test_rejects_both_sides_outer(self):
        # `j.state = j.kind` references only outer columns on both
        # sides: no probeable key, so decorrelation must decline.
        sub = self._sub(
            "SELECT 1 FROM deps d WHERE d.job_id = j.job_id "
            "AND j.state = j.kind")
        assert pl.decorrelate_exists(sub, self.OWN) is None

    def test_constant_side_becomes_a_constant_key(self):
        # `j.state = 'idle'` is outer = column-free: the literal builds
        # a constant key column, the outer column probes it — NULL
        # probes still fail, exactly SQL's `NULL = x`.
        sub = self._sub(
            "SELECT 1 FROM deps d WHERE d.job_id = j.job_id "
            "AND j.state = 'idle'")
        deco = pl.decorrelate_exists(sub, self.OWN)
        assert deco is not None
        assert len(deco.pairs) == 2

    def test_rejects_uncorrelated(self):
        sub = self._sub("SELECT 1 FROM deps d WHERE d.kind = 'hard'")
        assert pl.decorrelate_exists(sub, self.OWN) is None

    @pytest.mark.parametrize("clause", [
        "LIMIT 1", "GROUP BY d.kind", "ORDER BY d.job_id",
    ])
    def test_rejects_existence_changing_clauses(self, clause):
        sub = self._sub(
            f"SELECT 1 FROM deps d WHERE d.job_id = j.job_id {clause}")
        assert pl.decorrelate_exists(sub, self.OWN) is None

    def test_row_counts_reorder_build_side(self):
        own = {"d": ["job_id"], "p": ["job_id", "state"]}
        sub = self._sub(
            "SELECT 1 FROM big d JOIN small p ON p.job_id = d.job_id "
            "WHERE d.job_id = j.job_id")
        deco = pl.decorrelate_exists(
            sub, own, row_counts={"d": 50_000.0, "p": 3.0})
        assert deco is not None
        assert [src.alias for src in deco.build_select.sources] == \
            ["p", "d"]


class TestFusableWindowItems:
    def test_matching_row_number_fuses(self):
        select = sp.parse(
            "SELECT j.job_id, ROW_NUMBER() OVER (ORDER BY j.job_id) AS r "
            "FROM jobs j ORDER BY j.job_id LIMIT 10")
        assert pl.fusable_window_items(select) == [1]

    def test_mismatched_order_does_not_fuse(self):
        select = sp.parse(
            "SELECT ROW_NUMBER() OVER (ORDER BY j.owner) AS r "
            "FROM jobs j ORDER BY j.job_id")
        assert pl.fusable_window_items(select) is None

    def test_no_windows_means_no_fusion(self):
        select = sp.parse("SELECT j.job_id FROM jobs j ORDER BY j.job_id")
        assert pl.fusable_window_items(select) is None

    def test_distinct_blocks_fusion(self):
        select = sp.parse(
            "SELECT DISTINCT ROW_NUMBER() OVER (ORDER BY j.job_id) AS r "
            "FROM jobs j ORDER BY j.job_id")
        assert pl.fusable_window_items(select) is None

    def test_window_inside_exists_is_invisible(self):
        # contains_window must not descend into subqueries: the outer
        # select has no window of its own, so no fusion — but also no
        # false rejection of the subquery-bearing WHERE.
        select = sp.parse(
            "SELECT j.job_id FROM jobs j WHERE EXISTS ("
            "SELECT ROW_NUMBER() OVER (ORDER BY d.job_id) FROM deps d"
            ") ORDER BY j.job_id")
        assert pl.fusable_window_items(select) is None
        assert not pl.contains_window(select.where)


# ----------------------------------------------------------------------
# compiled-plan cache semantics
# ----------------------------------------------------------------------

def _seeded_db(backend):
    db = Database(backend=backend)
    db.execute(
        "INSERT INTO users (user_name, priority, created_at) "
        "VALUES (?, ?, ?)",
        ("alice", 5, 0.0),
    )
    db.executemany(
        "INSERT INTO jobs (owner, cmd, run_seconds, state, submitted_at) "
        "VALUES (?, ?, ?, ?, ?)",
        [("alice", "job.sh", 1.0, "idle", float(i)) for i in range(20)],
    )
    return db


@pytest.mark.parametrize("backend", BACKENDS)
def test_cached_plan_returns_identical_rows(backend):
    """A plan served from the cache is indistinguishable from a cold
    compile: same rows, byte for byte, on every execution."""
    db = _seeded_db(backend)
    sql = ("SELECT job_id, owner, state FROM jobs "
           "WHERE state = ? ORDER BY job_id")
    cold = [tuple(row) for row in db.query_all(sql, ("idle",))]
    assert db.counts.plan_misses >= 1
    hits_before = db.counts.plan_hits
    warm = [tuple(row) for row in db.query_all(sql, ("idle",))]
    assert db.counts.plan_hits == hits_before + 1
    assert warm == cold
    # Force a cold recompile of the same text and compare again.
    db.plan_cache.clear()
    recompiled = [tuple(row) for row in db.query_all(sql, ("idle",))]
    assert recompiled == cold


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from([
    "SELECT COUNT(*) FROM jobs WHERE state = 'idle'",
    "SELECT job_id FROM jobs WHERE owner = 'alice' ORDER BY job_id",
    "SELECT user_name, priority FROM users ORDER BY user_name",
    "UPDATE jobs SET state = 'held' WHERE job_id = 1",
    "UPDATE jobs SET state = 'idle' WHERE job_id = 1",
]), min_size=1, max_size=12))
def test_plan_ledger_identical_across_backends(statements):
    """Equal workloads produce equal plan-cache ledgers on both
    backends — hits, misses and evictions all admit through the one
    base-class path."""
    ledgers = {}
    results = {}
    for backend in BACKENDS:
        db = _seeded_db(backend)
        before = db.counts.snapshot()
        rows = []
        for sql in statements:
            if sql.startswith("SELECT"):
                rows.append([tuple(r) for r in db.query_all(sql)])
            else:
                db.execute(sql)
        delta = db.counts.delta(before)
        ledgers[backend] = (
            delta.plan_hits, delta.plan_misses, delta.plan_evictions)
        results[backend] = rows
    assert ledgers["sqlite"] == ledgers["memory"]
    assert results["sqlite"] == results["memory"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_scheduling_passes_converge_to_full_hit_rate(backend):
    """After the cold pass compiles the scheduling statements, every
    later pass runs entirely from the plan cache."""
    container = BeanContainer(Database(backend=backend))
    submission = SubmissionService(container)
    scheduling = SchedulingService(container)
    lifecycle = LifecycleService(container)
    heartbeat = HeartbeatService(container, scheduling, lifecycle)
    for m in range(2):
        heartbeat.register_machine(
            {"name": f"m{m:03d}", "vm_count": 4}, 0.0)
    submission.submit_jobs(
        [JobSpec(owner=f"user{i % 3}") for i in range(50)], now=0.0)
    counts = container.db.counts
    scheduling.run_pass(now=1.0)  # cold: compiles the pass's plans
    misses_after_cold = counts.plan_misses
    hits_before = counts.plan_hits
    warm_passes = 10
    for n in range(warm_passes):
        scheduling.run_pass(now=float(n + 2))
    assert counts.plan_misses == misses_after_cold, (
        "warm scheduling passes must not recompile any plan")
    warm_admissions = (counts.plan_hits - hits_before) + (
        counts.plan_misses - misses_after_cold)
    assert counts.plan_hits - hits_before == warm_admissions  # 100% hits


# ----------------------------------------------------------------------
# EXPLAIN
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_explain_renders_a_plan_tree(backend):
    db = _seeded_db(backend)
    report = db.explain(
        "SELECT job_id FROM jobs WHERE owner = ? ORDER BY job_id")
    assert report.engine == backend
    assert report.root.op == "STATEMENT"
    rendered = report.render()
    assert "STATEMENT" in rendered
    payload = report.to_dict()
    assert payload["engine"] == backend
    assert payload["plan"]["op"] == "STATEMENT"


@pytest.mark.parametrize("backend", BACKENDS)
def test_explain_is_uncounted(backend):
    db = _seeded_db(backend)
    before = db.counts.snapshot()
    db.explain("SELECT COUNT(*) FROM jobs WHERE state = ?")
    delta = db.counts.delta(before)
    assert delta.statements == 0
    assert delta.plan_hits == 0 and delta.plan_misses == 0


def test_memory_explain_chooses_index_probe():
    db = _seeded_db("memory")
    report = db.explain("SELECT * FROM jobs WHERE job_id = ?")
    rendered = report.render()
    assert "PROBE" in rendered
    assert "est=" in rendered


def test_memory_explain_profiles_actual_rows():
    db = _seeded_db("memory")
    report = db.explain(
        "SELECT job_id FROM jobs WHERE state = ? ORDER BY job_id",
        ("idle",))
    rendered = report.render()
    assert "actual=" in rendered
    # 20 idle jobs flow out of the driving probe.
    assert "actual=20" in rendered


def test_memory_explain_profiled_dml_rolls_back():
    db = _seeded_db("memory")
    before_rows = [tuple(r) for r in db.query_all(
        "SELECT job_id, state FROM jobs ORDER BY job_id")]
    before_counts = db.counts.snapshot()
    report = db.explain(
        "UPDATE jobs SET state = 'held' WHERE state = ?", ("idle",))
    assert report.root.op == "STATEMENT"
    after_rows = [tuple(r) for r in db.query_all(
        "SELECT job_id, state FROM jobs ORDER BY job_id")]
    assert after_rows == before_rows, "profiled DML must leave no trace"
    delta = db.counts.delta(before_counts)
    # Only the two verification SELECTs above are counted.
    assert delta.update == 0 and delta.rollbacks == 0


def test_sqlite_explain_binds_nulls_for_missing_params():
    # Explaining a cached statement text without its original arguments
    # must still work (the statistics page does exactly this).
    db = _seeded_db("sqlite")
    report = db.explain("SELECT * FROM jobs WHERE job_id = ?")
    assert "STEP" in report.render()


# ----------------------------------------------------------------------
# semi-join NULL semantics (decorrelated EXISTS vs SQLite)
# ----------------------------------------------------------------------

def _null_key_fixture(backend):
    db = Database(backend=backend)
    db.execute(
        "INSERT INTO users (user_name, priority, created_at) "
        "VALUES ('alice', 1, 0.0)")
    db.executemany(
        "INSERT INTO jobs (owner, cmd, run_seconds, state, submitted_at,"
        " requirements) VALUES (?, ?, ?, ?, ?, ?)",
        [("alice", "c", 1.0, "idle", 0.0, None),
         ("alice", "c", 1.0, "idle", 0.0, "mem>1"),
         ("alice", "c", 1.0, "idle", 0.0, "mem>2"),
         ("alice", "c", 1.0, "held", 0.0, None)]
        * 5,  # 20 rows: enough probes to cross the adaptive threshold
    )
    return db


@pytest.mark.parametrize("negated", [False, True])
def test_semi_join_null_probe_matches_sqlite(negated):
    """EXISTS correlated on a nullable column: NULL probe keys never
    match, NULL build keys never admit — identically on both engines,
    before and after the adaptive build threshold."""
    word = "NOT EXISTS" if negated else "EXISTS"
    sql = (
        "SELECT j.job_id FROM jobs j WHERE " + word + " ("
        "SELECT 1 FROM jobs o WHERE o.requirements = j.requirements "
        "AND o.state = 'held') ORDER BY j.job_id"
    )
    rows = {}
    for backend in BACKENDS:
        db = _null_key_fixture(backend)
        rows[backend] = [tuple(r) for r in db.query_all(sql)]
    assert rows["sqlite"] == rows["memory"]


def test_semi_join_empty_build_side_matches_sqlite():
    """All build-side keys NULL: EXISTS is false (NOT EXISTS true) for
    every probe, including NULL probes."""
    sql = (
        "SELECT j.job_id FROM jobs j WHERE NOT EXISTS ("
        "SELECT 1 FROM jobs o WHERE o.requirements = j.requirements "
        "AND o.state = 'removed') ORDER BY j.job_id"
    )
    rows = {}
    for backend in BACKENDS:
        db = _null_key_fixture(backend)
        rows[backend] = [tuple(r) for r in db.query_all(sql)]
    assert rows["sqlite"] == rows["memory"]
    # NOT EXISTS over an empty set keeps every row.
    assert len(rows["sqlite"]) == 20
