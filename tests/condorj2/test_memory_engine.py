"""Conformance tests for the dict-backed storage engine.

Three layers of assurance beyond the differential fuzzer:

* backend-parametrized contract tests — the same assertions run against
  SQLite and the memory engine, so every behaviour here is pinned on
  both implementations (affinity, rowcounts, lastrowid, constraint
  errors, transactional rollback, OR IGNORE, cascades, the dialect's
  harder corners);
* a property-based test that the memory engine's secondary indexes stay
  exactly consistent with table contents under interleaved
  insert/update/delete/rollback;
* a structural test that the engine-neutral ``TABLE_DEFS`` description
  agrees with the SQLite DDL, via catalog introspection — the two forms
  of the schema cannot drift apart silently.
"""

import sqlite3

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.condorj2.database import Database, DatabaseError
from repro.condorj2.schema import SCHEMA_STATEMENTS, TABLE_DEFS, TABLES
from repro.condorj2.storage import (
    MemoryStorageEngine,
    SqliteStorageEngine,
    available_engines,
    create_engine,
    default_backend,
    parse_storage_url,
    register_engine,
)

BACKENDS = ("sqlite", "memory")


@pytest.fixture(params=BACKENDS)
def db(request):
    database = Database(backend=request.param)
    yield database
    database.close()


def _seed_machine(db, name="m1", vms=2):
    db.execute("INSERT INTO machines (machine_name) VALUES (?)", (name,))
    for index in range(vms):
        db.execute(
            "INSERT INTO vms (vm_id, machine_name) VALUES (?, ?)",
            (f"vm{index}@{name}", name),
        )


# ----------------------------------------------------------------------
# engine registry / selection
# ----------------------------------------------------------------------

def test_registry_lists_both_backends():
    assert {"sqlite", "memory"} <= set(available_engines())


def test_parse_storage_url_forms():
    assert parse_storage_url("memory") == ("memory", ":memory:")
    assert parse_storage_url("memory://") == ("memory", ":memory:")
    assert parse_storage_url("sqlite::memory:") == ("sqlite", ":memory:")
    assert parse_storage_url("sqlite:///tmp/pool.db") == ("sqlite", "/tmp/pool.db")
    assert parse_storage_url(":memory:") == ("sqlite", ":memory:")
    assert parse_storage_url("/tmp/pool.db") == ("sqlite", "/tmp/pool.db")


def test_create_engine_resolves_names_and_urls():
    assert isinstance(create_engine("memory"), MemoryStorageEngine)
    assert isinstance(create_engine("sqlite"), SqliteStorageEngine)
    assert isinstance(create_engine("memory://"), MemoryStorageEngine)
    with pytest.raises(DatabaseError):
        create_engine("db2://cas")


def test_database_accepts_memory_url_as_path():
    database = Database(path="memory://")
    assert database.engine.name == "memory"
    database.close()


def test_environment_selects_default_backend(monkeypatch):
    monkeypatch.setenv("CONDORJ2_STORAGE_ENGINE", "memory")
    assert default_backend() == "memory"
    database = Database()
    assert database.engine.name == "memory"
    database.close()
    monkeypatch.delenv("CONDORJ2_STORAGE_ENGINE")
    assert default_backend() == "sqlite"


def test_register_engine_extends_registry():
    calls = []

    def factory(path, statement_cache_size=128):
        calls.append(path)
        return MemoryStorageEngine(path, statement_cache_size=statement_cache_size)

    register_engine("fuzz-double", factory)
    try:
        engine = create_engine("fuzz-double://anything")
        assert isinstance(engine, MemoryStorageEngine)
        assert calls == ["anything"]
    finally:
        import repro.condorj2.storage as storage
        storage._ENGINE_REGISTRY.pop("fuzz-double", None)


# ----------------------------------------------------------------------
# backend-parametrized contract
# ----------------------------------------------------------------------

def test_write_affinity_matches_sqlite(db):
    """INTEGER into REAL column reads back as float; float into INTEGER
    column with integral value reads back as int."""
    db.execute(
        "INSERT INTO users (user_name, created_at) VALUES ('u', 0)"
    )
    row = db.query_one("SELECT * FROM users")
    assert row["created_at"] == 0.0 and isinstance(row["created_at"], float)
    db.execute(
        "INSERT INTO jobs (job_id, owner, cmd, run_seconds, submitted_at,"
        " image_size_mb) VALUES (1, 'u', '/bin/x', 60, 0, 32.0)"
    )
    job = db.query_one("SELECT * FROM jobs")
    assert job["image_size_mb"] == 32 and isinstance(job["image_size_mb"], int)
    assert isinstance(job["run_seconds"], float)


def test_update_rowcount_counts_matched_rows(db):
    _seed_machine(db, vms=3)
    cursor = db.execute("UPDATE vms SET state = 'idle'")  # no-op values
    assert cursor.rowcount == 3
    cursor = db.execute(
        "UPDATE vms SET state = 'busy' WHERE vm_id = 'vm0@m1'"
    )
    assert cursor.rowcount == 1
    cursor = db.execute(
        "UPDATE vms SET state = 'busy' WHERE vm_id = 'nope'"
    )
    assert cursor.rowcount == 0


def test_insert_or_ignore_rowcount_and_lastrowid(db):
    cursor = db.execute(
        "INSERT OR IGNORE INTO users (user_name, created_at) VALUES ('a', 0)"
    )
    assert cursor.rowcount == 1
    cursor = db.execute(
        "INSERT OR IGNORE INTO users (user_name, created_at) VALUES ('a', 9)"
    )
    assert cursor.rowcount == 0
    assert db.scalar("SELECT created_at FROM users") == 0.0


def test_autoincrement_keys_are_never_reused(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    _seed_machine(db)
    db.execute(
        "INSERT INTO jobs (job_id, owner, cmd, run_seconds, submitted_at)"
        " VALUES (1, 'u', '/bin/x', 60, 0)"
    )
    first = db.execute(
        "INSERT INTO matches (job_id, vm_id, created_at)"
        " VALUES (1, 'vm0@m1', 0)"
    ).lastrowid
    db.execute("DELETE FROM matches WHERE match_id = ?", (first,))
    second = db.execute(
        "INSERT INTO matches (job_id, vm_id, created_at)"
        " VALUES (1, 'vm0@m1', 1)"
    ).lastrowid
    assert second == first + 1  # AUTOINCREMENT: no reuse after delete


def test_plain_integer_pk_assigns_max_plus_one(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    db.execute(
        "INSERT INTO workflows (workflow_id, owner, submitted_at)"
        " VALUES (7, 'u', 0)"
    )
    assigned = db.execute(
        "INSERT INTO workflows (owner, submitted_at) VALUES ('u', 1)"
    ).lastrowid
    assert assigned == 8


def test_constraint_errors_are_database_errors(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    with pytest.raises(DatabaseError):  # PK duplicate
        db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    with pytest.raises(DatabaseError):  # CHECK violation
        db.execute(
            "INSERT INTO jobs (job_id, owner, cmd, state, run_seconds,"
            " submitted_at) VALUES (1, 'u', '/bin/x', 'bogus', 60, 0)"
        )
    with pytest.raises(DatabaseError):  # FK violation
        db.execute(
            "INSERT INTO jobs (job_id, owner, cmd, run_seconds, submitted_at)"
            " VALUES (1, 'ghost', '/bin/x', 60, 0)"
        )
    with pytest.raises(DatabaseError):  # NOT NULL violation
        db.execute("INSERT INTO users (user_name) VALUES ('v')")


def test_restrict_fk_blocks_parent_delete(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    db.execute(
        "INSERT INTO jobs (job_id, owner, cmd, run_seconds, submitted_at)"
        " VALUES (1, 'u', '/bin/x', 60, 0)"
    )
    with pytest.raises(DatabaseError):
        db.execute("DELETE FROM users WHERE user_name = 'u'")


def test_cascade_delete_is_not_counted_in_rowcount(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    for job_id in (1, 2):
        db.execute(
            "INSERT INTO jobs (job_id, owner, cmd, run_seconds, submitted_at)"
            f" VALUES ({job_id}, 'u', '/bin/x', 60, 0)"  # sql-ident: int literal
        )
    db.execute(
        "INSERT INTO job_dependencies (job_id, depends_on_job_id) VALUES (2, 1)"
    )
    cursor = db.execute("DELETE FROM jobs WHERE job_id = 2")
    assert cursor.rowcount == 1  # the cascaded edge is not counted
    assert db.table_count("job_dependencies") == 0


def test_transaction_rollback_restores_indexes_and_rows(db):
    _seed_machine(db, vms=2)
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.execute("UPDATE vms SET state = 'busy' WHERE vm_id = 'vm0@m1'")
            db.execute("DELETE FROM vms WHERE vm_id = 'vm1@m1'")
            db.execute(
                "INSERT INTO vms (vm_id, machine_name) VALUES ('vm9@m1', 'm1')"
            )
            raise RuntimeError("abort")
    rows = {r["vm_id"]: r["state"] for r in db.query_all("SELECT * FROM vms")}
    assert rows == {"vm0@m1": "idle", "vm1@m1": "idle"}
    # the indexes survived the rollback: probes still work
    assert db.scalar(
        "SELECT COUNT(*) FROM vms WHERE machine_name = 'm1'"
    ) == 2
    assert db.scalar("SELECT COUNT(*) FROM vms WHERE state = 'idle'") == 2


def test_json_each_membership(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    for job_id in (1, 2, 3):
        db.execute(
            "INSERT INTO jobs (job_id, owner, cmd, run_seconds, submitted_at)"
            " VALUES (?, 'u', '/bin/x', 60, 0)", (job_id,)
        )
    rows = db.query_all(
        "SELECT job_id FROM jobs"
        " WHERE job_id IN (SELECT value FROM json_each(?))"
        " ORDER BY job_id",
        ("[1, 3]",),
    )
    assert [r["job_id"] for r in rows] == [1, 3]


def test_like_concat_and_aggregates(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    db.execute(
        "INSERT INTO provenance (output_name, job_id, executable,"
        " input_names, recorded_at) VALUES ('out', 1, '/bin/x', 'a,b', 0)"
    )
    rows = db.query_all(
        "SELECT output_name FROM provenance"
        " WHERE ',' || input_names || ',' LIKE ?",
        ("%,b,%",),
    )
    assert [r["output_name"] for r in rows] == ["out"]
    assert db.scalar("SELECT SUM(job_id) FROM provenance") == 1
    assert db.scalar("SELECT SUM(job_id) FROM provenance WHERE job_id > 9") is None
    assert db.scalar("SELECT COUNT(*) FROM provenance WHERE job_id > 9") == 0


def test_case_when_and_integer_division(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    db.execute(
        "INSERT INTO job_history (job_id, owner, cmd, run_seconds,"
        " submitted_at, final_state, completed_at)"
        " VALUES (1, 'u', '/bin/x', 60, 0, 'completed', 130.0)"
    )
    row = db.query_one(
        "SELECT CAST(completed_at / 60 AS INTEGER) AS minute,"
        "       SUM(CASE WHEN final_state = 'completed' THEN 1 ELSE 0 END)"
        "       AS done"
        " FROM job_history GROUP BY minute"
    )
    assert row["minute"] == 2
    assert row["done"] == 1


def test_limit_zero_returns_no_rows(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    assert db.query_all("SELECT user_name FROM users LIMIT 0") == []
    assert db.query_all("SELECT user_name FROM users LIMIT ?", (0,)) == []
    assert len(db.query_all(
        "SELECT user_name FROM users ORDER BY user_name LIMIT 0")) == 0


def test_three_valued_logic_yields_sqlite_integers(db):
    """FALSE AND NULL is 0 (not NULL), TRUE OR NULL is 1, and projected
    boolean results are integers on both backends."""
    assert db.scalar("SELECT 0 AND NULL") == 0
    assert db.scalar("SELECT NULL AND 0") == 0
    assert db.scalar("SELECT 1 AND NULL") is None
    assert db.scalar("SELECT 1 OR NULL") == 1
    assert db.scalar("SELECT NULL OR 0") is None
    value = db.scalar("SELECT 1 AND 1")
    assert value == 1 and isinstance(value, int) and repr(value) == "1"
    eq = db.scalar("SELECT 2 = 2")
    assert repr(eq) == "1"


def test_order_by_desc_limit_and_distinct(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    for job_id, exe in ((1, "/bin/a"), (2, "/bin/b"), (3, "/bin/a")):
        db.execute(
            "INSERT INTO provenance (output_name, job_id, executable,"
            " recorded_at) VALUES (?, ?, ?, 0)",
            (f"out{job_id}", job_id, exe),
        )
    top = db.query_one(
        "SELECT * FROM provenance ORDER BY prov_id DESC LIMIT 1"
    )
    assert top["output_name"] == "out3"
    distinct = db.query_all(
        "SELECT DISTINCT executable FROM provenance ORDER BY executable"
    )
    assert [r["executable"] for r in distinct] == ["/bin/a", "/bin/b"]


def test_like_is_ascii_folded_and_crosses_newlines(db):
    """SQLite's LIKE folds only ASCII case; '_'/'%' match newlines."""
    db.execute(
        "INSERT INTO provenance (output_name, job_id, executable,"
        " input_names, recorded_at) VALUES ('o1', 1, '/x', 'Ärger', 0)"
    )
    db.execute(
        "INSERT INTO provenance (output_name, job_id, executable,"
        " input_names, recorded_at) VALUES ('o2', 2, '/x', 'in' || ? || 'a', 0)",
        ("\n",),
    )
    assert db.query_all(
        "SELECT output_name FROM provenance WHERE input_names LIKE ?",
        ("ärger",),
    ) == []  # no Unicode folding
    hits = db.query_all(
        "SELECT output_name FROM provenance"
        " WHERE ',' || input_names || ',' LIKE ?",
        ("%,in_a,%",),
    )
    assert [row["output_name"] for row in hits] == ["o2"]


def test_integer_division_is_exact_beyond_float_precision(db):
    big = 36028797018963969  # 2**55 + 1: float round-trips lose the +1
    assert db.scalar("SELECT CAST(? AS INTEGER) / 3", (big,)) == big // 3
    assert db.scalar("SELECT CAST(? AS INTEGER) % 7", (big,)) == big % 7
    assert db.scalar("SELECT -7 / 2") == -3  # truncation, not floor
    assert db.scalar("SELECT -7 % 2") == -1


def test_comparison_affinity_coerces_text_parameters(db):
    """A text parameter compared to a numeric-affinity column converts
    to a number, on equality, IN membership and range predicates."""
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    db.execute(
        "INSERT INTO workflows (workflow_id, owner, submitted_at)"
        " VALUES (5, 'u', 0)"
    )
    assert db.scalar(
        "SELECT workflow_id FROM workflows WHERE workflow_id = ?", ("5",)
    ) == 5
    assert db.scalar(
        "SELECT workflow_id FROM workflows WHERE workflow_id IN (?, ?)",
        ("5", "9"),
    ) == 5
    assert db.scalar(
        "SELECT workflow_id FROM workflows WHERE workflow_id > ?", ("4",)
    ) == 5


# ----------------------------------------------------------------------
# memory-engine index maintenance under interleaved mutation
# ----------------------------------------------------------------------

_op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete", "txn-abort"]),
        st.integers(0, 11),
        st.sampled_from(["idle", "busy", "claiming", "offline"]),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=80, deadline=None)
@given(_op_strategy)
def test_memory_indexes_consistent_under_interleaving(ops):
    """After any interleaving of insert/update/delete (and aborted
    transactions), every equality index and unique map equals what a
    from-scratch rebuild over the rows produces."""
    engine = MemoryStorageEngine()
    database = Database(engine=engine)
    database.execute("INSERT INTO machines (machine_name) VALUES ('m')")
    live = set()
    for action, slot, state in ops:
        vm_id = f"vm{slot}@m"
        if action == "insert":
            if vm_id not in live:
                database.execute(
                    "INSERT INTO vms (vm_id, machine_name, state)"
                    " VALUES (?, 'm', ?)", (vm_id, state)
                )
                live.add(vm_id)
        elif action == "update":
            database.execute(
                "UPDATE vms SET state = ? WHERE vm_id = ?", (state, vm_id)
            )
        elif action == "delete":
            database.execute("DELETE FROM vms WHERE vm_id = ?", (vm_id,))
            live.discard(vm_id)
        else:  # txn-abort: mutate inside a rolled-back transaction
            try:
                with database.transaction():
                    database.execute(
                        "UPDATE vms SET state = ? WHERE vm_id = ?",
                        (state, vm_id),
                    )
                    database.execute(
                        "DELETE FROM vms WHERE machine_name = 'm'"
                    )
                    raise RuntimeError("abort")
            except RuntimeError:
                pass
        _assert_indexes_consistent(engine.tables["vms"])
    assert {row["vm_id"] for row in database.query_all("SELECT * FROM vms")} \
        == live


def _assert_indexes_consistent(table):
    for column, index in table.eq_indexes.items():
        rebuilt = {}
        for key, row in table.rows.items():
            rebuilt.setdefault(row[column], set()).add(key)
        assert index == rebuilt, f"index on {table.name}.{column} diverged"
    for cols, mapping in table.unique_maps.items():
        rebuilt = {}
        for key, row in table.rows.items():
            values = tuple(row[c] for c in cols)
            if any(v is None for v in values):
                continue
            assert values not in rebuilt, "duplicate slipped past UNIQUE"
            rebuilt[values] = key
        assert mapping == rebuilt, f"unique map on {cols} diverged"
    assert sorted(table.rows) == table.scan_keys()


# ----------------------------------------------------------------------
# the neutral schema description matches the SQLite DDL
# ----------------------------------------------------------------------

def test_table_defs_cover_all_tables():
    assert [tdef.name for tdef in TABLE_DEFS] == TABLES


def test_table_defs_agree_with_sqlite_catalog():
    conn = sqlite3.connect(":memory:")
    conn.row_factory = sqlite3.Row
    for statement in SCHEMA_STATEMENTS:
        conn.execute(statement)
    for tdef in TABLE_DEFS:
        info = conn.execute(f"PRAGMA table_info({tdef.name})").fetchall()
        declared = {row["name"]: row for row in info}
        assert list(declared) == [c.name for c in tdef.columns], tdef.name
        pk_cols = [row["name"] for row in
                   sorted(info, key=lambda r: r["pk"]) if row["pk"]]
        assert pk_cols == list(tdef.primary_key), tdef.name
        for col in tdef.columns:
            catalog = declared[col.name]
            catalog_type = catalog["type"].upper()
            assert col.affinity in catalog_type, (tdef.name, col.name)
            implicit_pk_not_null = (
                col.name in tdef.primary_key and not tdef.rowid
            )
            assert bool(catalog["notnull"]) or implicit_pk_not_null \
                == (col.not_null or implicit_pk_not_null), (tdef.name, col.name)
            if col.has_default and col.default is not None:
                assert catalog["dflt_value"] is not None, (tdef.name, col.name)
        fks = conn.execute(
            f"PRAGMA foreign_key_list({tdef.name})"
        ).fetchall()
        catalog_fks = {
            (row["from"], row["table"], row["to"] or "?"):
                row["on_delete"].lower()
            for row in fks
        }
        for fk in tdef.foreign_keys:
            match = [
                action for (frm, tbl, _to), action in catalog_fks.items()
                if frm == fk.column and tbl == fk.ref_table
            ]
            assert match, (tdef.name, fk.column)
            expected = "cascade" if fk.on_delete == "cascade" else "no action"
            assert match[0] == expected, (tdef.name, fk.column)
        assert len(catalog_fks) == len(tdef.foreign_keys), tdef.name
        autoinc = conn.execute(
            "SELECT COUNT(*) FROM sqlite_master WHERE name = ?"
            " AND sql LIKE '%AUTOINCREMENT%'", (tdef.name,)
        ).fetchone()[0]
        assert bool(autoinc) == tdef.autoincrement, tdef.name
    conn.close()
