"""Grep-style lint: no SQL built by interpolating *values* into f-strings.

The pre-refactor scheduler gated dependencies with
``f"SELECT COUNT(*) ... IN ({depends_on})"`` — an injection-prone
interpolation of a database value into SQL text.  The normalized
``job_dependencies`` table removed it; this lint keeps it (and anything
like it) from coming back.

The bean container legitimately interpolates *identifiers* (table and
column names drawn from class-level schema constants) and placeholder
lists (``"?, ?"`` strings) — those are allow-listed by the exact
expression text, so any new interpolation site fails the lint until it
is reviewed and either parameterized or added here.
"""

import ast
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Substrings (upper-cased) that mark an f-string as SQL-bearing.
SQL_MARKERS = (
    "SELECT ", "INSERT ", "UPDATE ", "DELETE ", " FROM ", " WHERE ",
    " VALUES ",
)

#: Exact expression texts allowed inside SQL f-strings: schema-constant
#: identifiers and placeholder/assignment lists built from ``?`` tokens.
ALLOWED_EXPRESSIONS = {
    # bean container: identifiers from class-level schema constants
    "self.TABLE", "self.PK",
    "bean_class.TABLE", "bean_class.PK",
    # bean container: "?"-lists and "col = ?"-lists
    "assignments", "columns", "column_list", "placeholders",
    # finder-method API: caller-supplied parameterized clause fragments
    "where", "order_by", "int(limit)",
    # access layer: identifier validated against the schema
    "table",
}

#: Per-file exemptions, for expressions too generic to allow globally.
#: The SQL parser's error messages quote the *rejected* statement and
#: the offending token — text that is never executed as SQL.
ALLOWED_EXPRESSIONS_BY_FILE = {
    "condorj2/storage/sqlparser.py": {
        "self.sql", "self.peek().value", "token.value",
    },
}


def _sql_fstrings(tree):
    for node in ast.walk(tree):
        if not isinstance(node, ast.JoinedStr):
            continue
        literal = "".join(
            part.value
            for part in node.values
            if isinstance(part, ast.Constant) and isinstance(part.value, str)
        ).upper()
        if any(marker in literal for marker in SQL_MARKERS):
            yield node


def _violations(root):
    found = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        allowed = ALLOWED_EXPRESSIONS | ALLOWED_EXPRESSIONS_BY_FILE.get(
            relative, set()
        )
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in _sql_fstrings(tree):
            for part in node.values:
                if not isinstance(part, ast.FormattedValue):
                    continue
                expression = ast.unparse(part.value)
                if expression not in allowed:
                    found.append(
                        f"{path.relative_to(root.parent)}:{node.lineno}: "
                        f"{{{expression}}} interpolated into SQL"
                    )
    return found


def test_no_value_interpolation_into_sql():
    violations = _violations(SRC_ROOT)
    assert violations == [], (
        "SQL must be parameterized (or the identifier expression "
        "reviewed and allow-listed):\n" + "\n".join(violations)
    )


def test_lint_catches_the_original_offender():
    """The exact pattern removed from scheduling.py:71 must be flagged."""
    offender = ast.parse(
        'db.scalar(f"SELECT COUNT(*) FROM jobs WHERE job_id IN ({depends_on})")'
    )
    nodes = list(_sql_fstrings(offender))
    assert len(nodes) == 1
    expressions = [
        ast.unparse(part.value)
        for part in nodes[0].values
        if isinstance(part, ast.FormattedValue)
    ]
    assert expressions == ["depends_on"]
    assert all(expr not in ALLOWED_EXPRESSIONS for expr in expressions)


def test_scheduling_module_has_no_fstring_sql():
    """The scheduling pass is pure parameterized SQL, no f-strings at all."""
    path = SRC_ROOT / "condorj2" / "logic" / "scheduling.py"
    tree = ast.parse(path.read_text(), filename=str(path))
    assert list(_sql_fstrings(tree)) == []
