"""No SQL built by interpolating *values* into f-strings.

The pre-refactor scheduler gated dependencies with
``f"SELECT COUNT(*) ... IN ({depends_on})"`` — an injection-prone
interpolation of a database value into SQL text.  The normalized
``job_dependencies`` table removed it; this lint keeps it (and anything
like it) from coming back.

The rule now lives in the static-analysis framework
(:mod:`repro.condorj2.analysis`) as ``fstring-value-interpolation``,
sharing its SQL-marker heuristic and identifier allow-list
(``SLOT_CATEGORIES`` — the bean container's schema-constant identifiers
and placeholder lists — plus per-file exemptions for the parser's
diagnostics).  This module is the tier-1 hook that runs the rule over
the whole source tree, wider than the analyzer's default package root.
"""

import ast
import textwrap
from pathlib import Path

from repro.condorj2.analysis.extract import (
    ALLOWED_BY_FILE_SUFFIX,
    SLOT_CATEGORIES,
    SQL_MARKERS,
    extract_corpus,
)

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


def _violations(root):
    corpus = extract_corpus(root)
    return [f for f in corpus.findings
            if f.rule == "fstring-value-interpolation"]


def test_no_value_interpolation_into_sql():
    violations = _violations(SRC_ROOT)
    assert violations == [], (
        "SQL must be parameterized (or the identifier expression "
        "reviewed and allow-listed in SLOT_CATEGORIES):\n"
        + "\n".join(v.render() for v in violations)
    )


def test_lint_catches_the_original_offender(tmp_path):
    """The exact pattern removed from scheduling.py:71 must be flagged."""
    (tmp_path / "offender.py").write_text(textwrap.dedent('''
        def gate(db, depends_on):
            return db.scalar(
                f"SELECT COUNT(*) FROM jobs WHERE job_id IN ({depends_on})"
            )
        '''))
    violations = _violations(tmp_path)
    assert len(violations) == 1
    violation = violations[0]
    assert violation.severity == "error"
    assert violation.file == "offender.py"
    assert "'depends_on'" in violation.message
    assert "depends_on" not in SLOT_CATEGORIES


def test_allow_lists_match_the_bean_container_idiom():
    """The allow-list is exactly the reviewed identifier expressions."""
    assert set(SLOT_CATEGORIES) == {
        "self.TABLE", "self.PK", "bean_class.TABLE", "bean_class.PK",
        "assignments", "columns", "column_list", "placeholders",
        "where", "order_by", "int(limit)", "table",
    }
    assert ALLOWED_BY_FILE_SUFFIX == {
        "storage/sqlparser.py": {
            "self.sql", "self.peek().value", "token.value",
        },
        # the transition probe interpolates LifecycleDef identifiers (a
        # schema-bounded set) plus the statement's own WHERE text
        "storage/transitions.py": {"column", "table", "suffix"},
        # finding messages quote lifecycle table/column names
        "analysis/lifecycle.py": {"lifecycle.table", "lifecycle.column"},
    }


def test_scheduling_module_has_no_fstring_sql():
    """The scheduling pass is pure parameterized SQL, no f-strings at all."""
    path = SRC_ROOT / "condorj2" / "logic" / "scheduling.py"
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, ast.JoinedStr):
            continue
        literal = "".join(
            part.value for part in node.values
            if isinstance(part, ast.Constant) and isinstance(part.value, str)
        )
        assert not any(marker in literal for marker in SQL_MARKERS), (
            f"scheduling.py:{node.lineno} builds SQL with an f-string"
        )
