"""Tier-1 tests for runtime statement-budget enforcement.

The runtime half of the dispatch-complexity story (DESIGN.md section
9.2): every operation contract declares a ``statement_budget``, the
gateway meters each call's share of the storage engine's statement
ledger against it on all three backends, and an overrun raises a
structured ``INTERNAL/budget-exceeded`` fault that the per-operation
stats and the admin console both surface.
"""

import pytest

from repro.cluster import ClusterSpec, RELIABLE_EXECUTION
from repro.condorj2 import CondorJ2System
from repro.condorj2.api import (
    CONTRACTS,
    ContractRegistry,
    FaultCode,
    InternalFault,
    OperationContract,
    StatementBudget,
)
from repro.condorj2.api.fields import SchemaDef, f_int, f_list, f_str
from repro.condorj2.api.gateway import ServiceGateway
from repro.condorj2.database import Database
from repro.workload import fixed_length_batch

BACKENDS = ("sqlite", "memory", "wal")


# ----------------------------------------------------------------------
# the contract surface declares budgets everywhere
# ----------------------------------------------------------------------

def test_every_contract_declares_a_constant_budget():
    for contract in CONTRACTS:
        budget = contract.statement_budget
        assert budget is not None, f"{contract.name} has no budget"
        # Every handler is statically O(1) (the analyzer proves it), so
        # every declared budget must be constant.
        assert budget.per_item == 0, contract.name
        assert budget.base > 0, contract.name


def test_budget_arithmetic_and_rendering():
    constant = StatementBudget(12)
    assert constant.limit() == 12
    assert constant.limit(500) == 12
    assert constant.render() == "12"
    assert constant.batch_size({"jobs": [1, 2, 3]}) == 0
    affine = StatementBudget(4, per_item=2, batch_field="jobs")
    assert affine.limit(affine.batch_size({"jobs": [1, 2, 3]})) == 10
    assert affine.batch_size({}) == 0
    assert affine.batch_size({"jobs": None}) == 0
    assert affine.batch_size("not a struct") == 0
    assert affine.render() == "4 + 2·|jobs|"


# ----------------------------------------------------------------------
# enforcement, on every storage backend
# ----------------------------------------------------------------------

def _probe_gateway(backend, budget):
    """A one-operation registry whose handler dispatches on demand."""
    db = Database(backend=backend)
    contract = OperationContract(
        name="probe", version="1.0", summary="budget probe",
        side_effect="read",
        request=SchemaDef("ProbeRequest", (
            f_int("statements"),
            f_list("items", f_int("item"), required=False, default=()),
        )),
        response=SchemaDef("ProbeResponse", (f_str("status", enum=("OK",)),)),
        statement_budget=budget,
    )
    registry = ContractRegistry([contract])

    def handler(payload, now):
        for _ in range(payload["statements"]):
            db.scalar("SELECT COUNT(*) FROM jobs")
        return {"status": "OK"}

    registry.bind("probe", handler)
    return ServiceGateway(registry, counts=db.counts)


@pytest.mark.parametrize("backend", BACKENDS)
def test_overrun_raises_budget_exceeded(backend):
    gateway = _probe_gateway(backend, StatementBudget(2))
    assert gateway.dispatch("probe", {"statements": 2}, 0.0) \
        == {"status": "OK"}
    with pytest.raises(InternalFault) as excinfo:
        gateway.dispatch("probe", {"statements": 3}, 1.0)
    fault = excinfo.value
    assert fault.code == FaultCode.INTERNAL
    assert fault.subcode == "budget-exceeded"
    assert fault.operation == "probe"
    assert "3 statements" in fault.detail and "budget of 2" in fault.detail
    stats = gateway.stats["probe"]
    assert stats.calls == 2
    assert stats.budget_overruns == 1
    assert stats.faults == 1
    assert stats.fault_codes == {FaultCode.INTERNAL: 1}
    assert stats.max_statements == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_affine_budget_scales_with_the_declared_batch_field(backend):
    budget = StatementBudget(1, per_item=1, batch_field="items")
    gateway = _probe_gateway(backend, budget)
    # 4 statements against 1 + 1*3 = 4: exactly at the limit, allowed.
    payload = {"statements": 4, "items": [1, 2, 3]}
    assert gateway.dispatch("probe", payload, 0.0) == {"status": "OK"}
    with pytest.raises(InternalFault) as excinfo:
        gateway.dispatch("probe", {"statements": 4, "items": [1]}, 1.0)
    assert excinfo.value.subcode == "budget-exceeded"
    assert gateway.stats["probe"].budget_overruns == 1


def test_unmetered_contract_is_never_enforced():
    gateway = _probe_gateway("memory", None)
    assert gateway.dispatch("probe", {"statements": 50}, 0.0) \
        == {"status": "OK"}
    assert gateway.stats["probe"].budget_overruns == 0


def test_handler_faults_are_not_double_counted_as_overruns():
    db = Database(backend="memory")
    contract = OperationContract(
        name="probe", version="1.0", summary="budget probe",
        side_effect="read",
        request=SchemaDef("ProbeRequest", ()),
        response=SchemaDef("ProbeResponse", (f_str("status", enum=("OK",)),)),
        statement_budget=StatementBudget(1),
    )
    registry = ContractRegistry([contract])

    def handler(payload, now):
        for _ in range(10):
            db.scalar("SELECT COUNT(*) FROM jobs")
        raise ValueError("handler bug")

    registry.bind("probe", handler)
    gateway = ServiceGateway(registry, counts=db.counts)
    with pytest.raises(Exception) as excinfo:
        gateway.dispatch("probe", {}, 0.0)
    # The handler's own fault wins; the budget is only asserted on the
    # success path (the overrun is the likelier symptom, not the cause).
    assert getattr(excinfo.value, "subcode", "") != "budget-exceeded"
    stats = gateway.stats["probe"]
    assert stats.budget_overruns == 0
    assert stats.faults == 1
    assert stats.max_statements == 10


# ----------------------------------------------------------------------
# the real system runs inside its declared budgets
# ----------------------------------------------------------------------

def _small_system(**kwargs):
    defaults = dict(
        cluster=ClusterSpec(physical_nodes=2, vms_per_node=2,
                            dual_core_fraction=0.0, speed_jitter=0.0),
        seed=13,
        execution=RELIABLE_EXECUTION,
    )
    defaults.update(kwargs)
    return CondorJ2System(**defaults)


def test_full_workload_stays_inside_every_declared_budget():
    system = _small_system()
    system.submit_at(0.0, fixed_length_batch(8, 20.0))
    system.run_until_complete(expected_jobs=8, max_seconds=3600.0)
    assert system.completed_count() == 8
    for operation, stats in system.cas.gateway.stats.items():
        assert stats.budget_overruns == 0, operation
        contract = system.cas.gateway.registry.contract(operation)
        budget = contract.statement_budget
        assert stats.max_statements <= budget.limit(0), operation


def test_statistics_page_shows_budget_headroom_panel():
    system = _small_system()
    system.start()
    system.submit_at(1.0, fixed_length_batch(4, 15.0))
    system.run_until_complete(expected_jobs=4, max_seconds=600.0)
    page = system.cas.site.statistics_page()
    assert "Statement Budgets" in page
    assert "peak stmts" in page and "headroom" in page and "overruns" in page
    assert "(malformed)" not in page.split("Statement Budgets", 1)[1]
