"""Tests for the pool web site, including the per-table statement
statistics page (the admin-console view of ``StatementCounts``)."""

import pytest

from repro.cluster import JobSpec
from repro.condorj2.beans import BeanContainer
from repro.condorj2.database import Database
from repro.condorj2.logic import (
    ConfigService,
    HeartbeatService,
    LifecycleService,
    ReportService,
    SchedulingService,
    SubmissionService,
)
from repro.condorj2.web.site import PoolWebSite

BACKENDS = ("sqlite", "memory", "wal")


@pytest.fixture(params=BACKENDS)
def stack(request):
    container = BeanContainer(Database(backend=request.param))
    submission = SubmissionService(container)
    scheduling = SchedulingService(container)
    lifecycle = LifecycleService(container)
    heartbeat = HeartbeatService(container, scheduling, lifecycle)
    reports = ReportService(container.db)
    config = ConfigService(container)
    site = PoolWebSite(reports, config)
    return container, submission, scheduling, heartbeat, site


def test_statistics_page_reports_per_table_traffic(stack):
    container, submission, scheduling, heartbeat, site = stack
    heartbeat.register_machine({"name": "m1", "vm_count": 2}, 0.0)
    submission.submit_jobs([JobSpec(), JobSpec()], now=1.0)
    scheduling.run_pass(now=2.0)
    page = site.statistics_page()
    assert "Statement Statistics" in page
    for table in ("jobs", "vms", "machines", "matches", "users"):
        assert table in page
    assert "Storage Engine" in page
    assert container.db.engine.name in page
    assert site.page_views["statistics"] == 1
    # the page reflects the ledger: match rows were actually written
    assert container.db.counts.table_writes("matches") == 2


def test_statistics_page_counts_reads_and_writes_separately(stack):
    container, submission, _, heartbeat, site = stack
    heartbeat.register_machine({"name": "m1", "vm_count": 1}, 0.0)
    before_writes = container.db.counts.table_writes("machines")
    container.db.query_all("SELECT * FROM machines")
    container.db.query_all("SELECT * FROM machines")
    assert container.db.counts.table_writes("machines") == before_writes
    verbs = container.db.counts.tables["machines"]
    assert verbs.get("select", 0) >= 2
    page = site.statistics_page()
    assert "machines" in page


def test_standard_pages_render_on_both_backends(stack):
    container, submission, scheduling, heartbeat, site = stack
    heartbeat.register_machine({"name": "m1", "vm_count": 1}, 0.0)
    job_id = submission.submit_job(JobSpec(owner="alice"), now=1.0)
    scheduling.run_pass(now=2.0)
    assert "Job Queue" in site.queue_page()
    assert "Pool Status" in site.pool_page()
    assert "alice" in site.user_page("alice")
    assert str(job_id) in site.job_page(job_id)
    assert "Accounting" in site.accounting_page()
    assert "Configuration" in site.config_page(["scheduling_interval_seconds"])


def test_statistics_page_durability_panel(stack):
    """The WAL backend's statistics page shows the durability ledger;
    engines without a write-ahead log render no such panel."""
    container, submission, _, heartbeat, site = stack
    heartbeat.register_machine({"name": "m1", "vm_count": 1}, 0.0)
    submission.submit_jobs([JobSpec()], now=1.0)
    page = site.statistics_page()
    if container.db.engine.name == "wal":
        assert "Durability (write-ahead log)" in page
        assert "log forces (fsync)" in page
        assert "fsync policy" in page
        stats = container.db.engine.wal_stats()
        assert stats["appends"] > 0
        assert str(stats["appends"]) in page
    else:
        assert "Durability" not in page


def test_statistics_page_transition_ledger_panel(stack):
    """The statistics page renders the runtime transition ledger (the
    observed lifecycle edges) next to the durability panel."""
    container, submission, scheduling, heartbeat, site = stack
    assert "Lifecycle Transitions" not in site.statistics_page()
    heartbeat.register_machine({"name": "m1", "vm_count": 1}, 0.0)
    submission.submit_jobs([JobSpec(owner="alice")], now=1.0)
    scheduling.run_pass(now=2.0)
    page = site.statistics_page()
    assert "Lifecycle Transitions (observed)" in page
    assert "(new)" in page  # creation edges out of the BORN pseudo-state
    edges = container.db.counts.transitions
    assert edges["jobs"].get("(new)->idle") == 1
    assert edges["jobs"].get("idle->matched") == 1
    assert edges["machines"].get("(new)->alive") == 1
