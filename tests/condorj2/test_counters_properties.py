"""Property-based tests for the statement accounting algebra.

``StatementCounts`` is the contract both storage engines record through
and the quantity the differential fuzzer compares, so its algebra has to
be exact: ``merge`` is associative and commutative with the empty counts
as identity, ``snapshot``/``delta`` round-trip, and the verb/table
classifiers are stable under whitespace/case noise — including the
CTE-prefixed and INSERT..SELECT forms that defeat naive first-word
classification.
"""

import dataclasses

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.condorj2.storage import (
    StatementCounts,
    statement_table,
    statement_verb,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

_VERBS = ("select", "insert", "update", "delete")
_TABLES = ("jobs", "vms", "matches", "users")

#: Every integer counter of StatementCounts, discovered from the
#: dataclass itself — a counter added to the class (the durability
#: ledger was the latest) is property-covered automatically, so the
#: merge/delta algebra cannot silently exclude new fields.
INT_FIELDS = tuple(
    f.name for f in dataclasses.fields(StatementCounts) if f.type == "int"
)

_EDGES = ("(new)->idle", "idle->matched", "matched->running",
          "running->(gone)", "alive->missing")

counts_strategy = st.builds(
    StatementCounts,
    tables=st.dictionaries(
        st.sampled_from(_TABLES),
        st.dictionaries(st.sampled_from(_VERBS), st.integers(1, 100),
                        min_size=1),
        max_size=4,
    ),
    transitions=st.dictionaries(
        st.sampled_from(_TABLES),
        st.dictionaries(st.sampled_from(_EDGES), st.integers(1, 100),
                        min_size=1),
        max_size=3,
    ),
    **{name: st.integers(0, 1000) for name in INT_FIELDS},
)


def _canonical(counts):
    """Counts as a comparable value with empty table entries dropped."""
    tables = {
        table: {verb: n for verb, n in verbs.items() if n}
        for table, verbs in counts.tables.items()
    }
    transitions = {
        table: {edge: n for edge, n in edges.items() if n}
        for table, edges in counts.transitions.items()
    }
    return (
        tuple(getattr(counts, name) for name in INT_FIELDS),
        {table: verbs for table, verbs in tables.items() if verbs},
        {table: edges for table, edges in transitions.items() if edges},
    )


def test_int_field_discovery_sees_the_durability_ledger():
    """The dynamic field list includes the WAL counters (and will pick
    up any future ones), so every algebra property below covers them."""
    assert {"wal_appends", "wal_replays", "fsyncs", "checkpoints",
            "commits", "plan_evictions"} <= set(INT_FIELDS)
    assert "tables" not in INT_FIELDS


# ----------------------------------------------------------------------
# merge algebra
# ----------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(counts_strategy, counts_strategy, counts_strategy)
def test_merge_is_associative(a, b, c):
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert _canonical(left) == _canonical(right)


@settings(max_examples=200, deadline=None)
@given(counts_strategy, counts_strategy)
def test_merge_is_commutative(a, b):
    assert _canonical(a.merge(b)) == _canonical(b.merge(a))


@settings(max_examples=100, deadline=None)
@given(counts_strategy)
def test_empty_counts_is_merge_identity(a):
    assert _canonical(a.merge(StatementCounts())) == _canonical(a)
    assert _canonical(StatementCounts().merge(a)) == _canonical(a)


@settings(max_examples=100, deadline=None)
@given(counts_strategy, counts_strategy)
def test_delta_inverts_merge(a, b):
    """(a ⊕ b) - a == b: what accumulated since a snapshot is the delta."""
    merged = a.merge(b)
    assert _canonical(merged.delta(a)) == _canonical(b)


@settings(max_examples=100, deadline=None)
@given(counts_strategy)
def test_snapshot_is_independent(a):
    snap = a.snapshot()
    assert _canonical(snap) == _canonical(a)
    a.record("INSERT", 3)
    a.record_table("jobs", "INSERT", 3)
    a.record_transition("jobs", "(new)", "idle", 3)
    assert _canonical(snap) != _canonical(a)


def test_record_transition_accumulates_and_ignores_nonpositive():
    counts = StatementCounts()
    counts.record_transition("jobs", "idle", "matched", 2)
    counts.record_transition("jobs", "idle", "matched")
    counts.record_transition("jobs", "matched", "running", 0)
    counts.record_transition("vms", "idle", "claiming", -1)
    assert counts.transitions == {"jobs": {"idle->matched": 3}}


@settings(max_examples=100, deadline=None)
@given(counts_strategy)
def test_table_writes_counts_only_dml(a):
    for table in _TABLES:
        verbs = a.tables.get(table, {})
        expected = (verbs.get("insert", 0) + verbs.get("update", 0)
                    + verbs.get("delete", 0))
        assert a.table_writes(table) == expected


# ----------------------------------------------------------------------
# verb / table classification
# ----------------------------------------------------------------------

_whitespace = st.text(alphabet=" \t\n", min_size=0, max_size=3)


def _casing(text):
    return st.sampled_from([text.lower(), text.upper(), text.title()])


@settings(max_examples=100, deadline=None)
@given(_whitespace, _casing("select"), _whitespace)
def test_statement_verb_ignores_whitespace_and_case(lead, verb, gap):
    sql = f"{lead}{verb}{gap} * FROM jobs"
    assert statement_verb(sql) == "SELECT"


@settings(max_examples=100, deadline=None)
@given(_whitespace, st.sampled_from(["jobs", "vms", "matches"]))
def test_insert_select_classifies_as_insert(lead, table):
    sql = (f"{lead}INSERT INTO {table} (a, b)"
           f" SELECT x, y FROM other WHERE x > 0")
    assert statement_verb(sql) == "INSERT"
    assert statement_table(sql) == table


@settings(max_examples=100, deadline=None)
@given(st.sampled_from(["SELECT", "INSERT", "UPDATE", "DELETE"]),
       st.integers(1, 3))
def test_cte_classifies_as_main_verb(verb, depth):
    """WITH-prefixed statements report the statement's real verb."""
    body = "SELECT 1"
    for _ in range(depth):
        body = f"SELECT * FROM ({body})"
    tails = {
        "SELECT": "SELECT * FROM cte",
        "INSERT": "INSERT INTO jobs (a) SELECT x FROM cte",
        "UPDATE": "UPDATE jobs SET a = 1 WHERE b IN (SELECT x FROM cte)",
        "DELETE": "DELETE FROM jobs WHERE b IN (SELECT x FROM cte)",
    }
    sql = f"WITH cte AS ({body}) {tails[verb]}"
    assert statement_verb(sql) == verb


def test_statement_table_classification_on_layer_dialect():
    cases = [
        ("INSERT INTO matches (job_id) SELECT job_id FROM jobs", "matches"),
        ("UPDATE jobs SET state = 'matched' WHERE 1", "jobs"),
        ("DELETE FROM runs WHERE job_id = ?", "runs"),
        ("SELECT COUNT(*) FROM vms WHERE state = 'idle'", "vms"),
        ("SELECT a FROM (SELECT a FROM users) sub", "users"),
        # the outermost FROM wins over a scalar subquery's FROM
        ("SELECT (SELECT COUNT(*) FROM runs), j.owner FROM jobs j", "jobs"),
        # string literals cannot confuse the scan
        ("SELECT CASE WHEN note = 'copied FROM jobs' THEN 1 ELSE 0 END"
         " FROM vms", "vms"),
        ("SELECT 1", ""),
        ("", ""),
    ]
    for sql, expected in cases:
        assert statement_table(sql) == expected, sql


def test_statement_verb_blank_and_plain():
    assert statement_verb("") == ""
    assert statement_verb("   ") == ""
    assert statement_verb("PRAGMA foreign_keys = ON") == "PRAGMA"
