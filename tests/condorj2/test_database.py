"""Unit tests for the SQLite access layer."""

import pytest

from repro.condorj2.database import ConnectionPool, Database, DatabaseError
from repro.condorj2.schema import TABLES


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


def test_schema_creates_all_tables(db):
    for table in TABLES:
        assert db.table_count(table) == 0


def test_execute_counts_by_verb(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('a', 0)")
    db.execute("SELECT * FROM users")
    db.execute("UPDATE users SET priority = 0.1 WHERE user_name = 'a'")
    db.execute("DELETE FROM users WHERE user_name = 'a'")
    assert db.counts.insert == 1
    assert db.counts.select == 1
    assert db.counts.update == 1
    assert db.counts.delete == 1
    assert db.counts.total() == 4


def test_counts_snapshot_and_delta(db):
    db.execute("SELECT 1")
    before = db.counts.snapshot()
    db.execute("SELECT 1")
    db.execute("SELECT 1")
    delta = db.counts.delta(before)
    assert delta.select == 2
    assert before.select == 1


def test_query_helpers(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('bob', 5.0)")
    row = db.query_one("SELECT * FROM users WHERE user_name = ?", ("bob",))
    assert row["created_at"] == 5.0
    assert db.query_one("SELECT * FROM users WHERE user_name = 'nope'") is None
    assert db.scalar("SELECT COUNT(*) FROM users") == 1
    assert len(db.query_all("SELECT * FROM users")) == 1


def test_transaction_commits(db):
    with db.transaction():
        db.execute("INSERT INTO users (user_name, created_at) VALUES ('x', 0)")
    assert db.table_count("users") == 1
    assert db.counts.commits == 1


def test_transaction_rolls_back_on_error(db):
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.execute("INSERT INTO users (user_name, created_at) VALUES ('x', 0)")
            raise RuntimeError("abort")
    assert db.table_count("users") == 0
    assert db.counts.commits == 0


def test_nested_transactions_join_outer(db):
    with db.transaction():
        db.execute("INSERT INTO users (user_name, created_at) VALUES ('x', 0)")
        with db.transaction():
            db.execute("INSERT INTO users (user_name, created_at) VALUES ('y', 0)")
        assert db.in_transaction
    assert db.counts.commits == 1
    assert db.table_count("users") == 2


def test_integrity_error_wrapped(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('x', 0)")
    with pytest.raises(DatabaseError):
        db.execute("INSERT INTO users (user_name, created_at) VALUES ('x', 0)")


def test_check_constraint_enforced(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    with pytest.raises(DatabaseError):
        db.execute(
            "INSERT INTO jobs (job_id, owner, cmd, state, run_seconds, submitted_at)"
            " VALUES (1, 'u', '/bin/x', 'bogus-state', 60, 0)"
        )


def test_foreign_keys_enforced(db):
    with pytest.raises(DatabaseError):
        db.execute(
            "INSERT INTO jobs (job_id, owner, cmd, run_seconds, submitted_at)"
            " VALUES (1, 'ghost-user', '/bin/x', 60, 0)"
        )


def test_unique_match_per_vm(db):
    db.execute("INSERT INTO users (user_name, created_at) VALUES ('u', 0)")
    for job_id in (1, 2):
        db.execute(
            "INSERT INTO jobs (job_id, owner, cmd, run_seconds, submitted_at)"
            f" VALUES ({job_id}, 'u', '/bin/x', 60, 0)"
        )
    db.execute("INSERT INTO machines (machine_name) VALUES ('m')")
    db.execute("INSERT INTO vms (vm_id, machine_name) VALUES ('vm0@m', 'm')")
    db.execute("INSERT INTO matches (job_id, vm_id, created_at) VALUES (1, 'vm0@m', 0)")
    with pytest.raises(DatabaseError):
        db.execute(
            "INSERT INTO matches (job_id, vm_id, created_at) VALUES (2, 'vm0@m', 0)"
        )


def test_table_count_rejects_bad_identifier(db):
    with pytest.raises(DatabaseError):
        db.table_count("users; DROP TABLE users")


def test_connection_pool_statistics(db):
    pool = ConnectionPool(db, size=2)
    with pool.connection():
        with pool.connection():
            assert pool.in_use == 2
    assert pool.in_use == 0
    assert pool.acquisitions == 2
    assert pool.peak_in_use == 2


def test_connection_pool_exhaustion(db):
    pool = ConnectionPool(db, size=1)
    with pool.connection():
        with pytest.raises(DatabaseError):
            with pool.connection():
                pass


def test_connection_pool_rejects_zero_size(db):
    with pytest.raises(DatabaseError):
        ConnectionPool(db, size=0)
