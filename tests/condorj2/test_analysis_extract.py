"""Adversarial shapes for the SQL corpus extractor.

The extractor must recover statements from every construction idiom the
codebase uses — triple-quoted constants, implicit and explicit
concatenation, allow-listed f-string slots, module-level constants,
``sql += ...`` growth — while *not* inventing SQL out of log messages,
diagnostics wrappers, or arguments it cannot resolve.
"""

import textwrap

from repro.condorj2.analysis.extract import extract_corpus
from repro.condorj2.storage import sqlparser


def _extract(tmp_path, source, name="mod.py"):
    (tmp_path / name).write_text(textwrap.dedent(source))
    return extract_corpus(tmp_path)


def test_triple_quoted_statement(tmp_path):
    corpus = _extract(tmp_path, '''
        def q(db, owner):
            return db.query_all(
                """
                SELECT job_id, state
                FROM jobs
                WHERE owner = ?
                ORDER BY job_id
                """,
                (owner,),
            )
        ''')
    assert len(corpus.statements) == 1
    statement = corpus.statements[0]
    assert statement.constant and statement.arity == 1
    sqlparser.parse(statement.renders[0])


def test_verb_followed_by_newline_is_still_sql(tmp_path):
    corpus = _extract(tmp_path, '''
        def q(db):
            return db.query_one(
                """
                SELECT
                  COUNT(*) AS n
                FROM jobs
                """
            )
        ''')
    assert len(corpus.statements) == 1


def test_implicit_and_explicit_concatenation_fold(tmp_path):
    corpus = _extract(tmp_path, '''
        PREFIX = "SELECT job_id FROM jobs "

        def q(db, owner):
            implicit = db.query_all(
                "SELECT job_id FROM jobs "
                "WHERE owner = ? ORDER BY job_id",
                (owner,),
            )
            explicit = db.query_all(PREFIX + "WHERE state = ?", (owner,))
            return implicit, explicit
        ''')
    texts = sorted(s.renders[0] for s in corpus.statements)
    assert texts == [
        "SELECT job_id FROM jobs WHERE owner = ? ORDER BY job_id",
        "SELECT job_id FROM jobs WHERE state = ?",
    ]
    assert all(s.constant for s in corpus.statements)


def test_module_level_constant_is_resolved(tmp_path):
    corpus = _extract(tmp_path, '''
        _INSERT = (
            "INSERT INTO job_dependencies (job_id, depends_on_job_id) "
            "VALUES (?, ?)"
        )

        def load(db, edges):
            rows = [(parent, child) for parent, child in edges]
            db.executemany(_INSERT, rows)
        ''')
    assert len(corpus.statements) == 1
    statement = corpus.statements[0]
    assert statement.method == "executemany"
    assert statement.arity == 2  # list-comp row tuples resolved


def test_allowed_fstring_slots_render_per_bean(tmp_path):
    corpus = _extract(tmp_path, '''
        class WidgetBean:
            TABLE = "jobs"
            PK = "job_id"
            FIELDS = ("owner", "cmd")

        class Container:
            def find(self, bean_class, pk):
                return self.db.query_one(
                    f"SELECT * FROM {bean_class.TABLE} "
                    f"WHERE {bean_class.PK} = ?",
                    (pk,),
                )
        ''')
    assert [bean.name for bean in corpus.beans] == ["WidgetBean"]
    assert len(corpus.statements) == 1
    statement = corpus.statements[0]
    assert not statement.constant
    assert statement.renders == ["SELECT * FROM jobs WHERE job_id = ?"]
    assert [f.rule for f in corpus.findings] == ["templated-sql"]


def test_augmented_assignment_marks_template_open_ended(tmp_path):
    corpus = _extract(tmp_path, '''
        class Container:
            def find_where(self, bean_class, where, params, order_by=None):
                sql = f"SELECT * FROM {bean_class.TABLE} WHERE {where}"
                if order_by:
                    sql += f" ORDER BY {order_by}"
                return self.db.query_all(sql, params)
        ''')
    assert len(corpus.statements) == 1
    statement = corpus.statements[0]
    assert statement.template.open_ended
    pattern = statement.coverage_pattern()
    assert pattern.match("SELECT * FROM jobs WHERE state = ?")
    assert pattern.match(
        "SELECT * FROM jobs WHERE state = ? ORDER BY job_id")
    assert not pattern.match("DELETE FROM jobs WHERE state = ?")


def test_value_interpolation_is_flagged_not_rendered(tmp_path):
    corpus = _extract(tmp_path, '''
        def bad(db, depends_on):
            return db.scalar(
                f"SELECT COUNT(*) FROM jobs WHERE job_id IN ({depends_on})"
            )
        ''')
    assert len(corpus.statements) == 1
    assert corpus.statements[0].renders == []
    rules = sorted(f.rule for f in corpus.findings)
    assert rules == ["dynamic-sql", "fstring-value-interpolation"]
    injection = [f for f in corpus.findings
                 if f.rule == "fstring-value-interpolation"]
    assert "'depends_on'" in injection[0].message


def test_log_messages_and_diagnostics_are_not_sql(tmp_path):
    corpus = _extract(tmp_path, '''
        def work(log, db, sql, job_id):
            log.info(f"scheduling pass for job {job_id} finished")
            log.info("BEGIN IMMEDIATE")
            db.execute("PRAGMA journal_mode=WAL")
            explained = db.query_all(f"EXPLAIN QUERY PLAN {sql}")
            return explained
        ''')
    # No statements: the PRAGMA is not dialect SQL, the EXPLAIN wrapper
    # has no SQL-verb constant prefix, log calls are not execute calls.
    assert corpus.statements == []
    assert corpus.findings == []


def test_unresolvable_first_argument_is_skipped(tmp_path):
    corpus = _extract(tmp_path, '''
        class Database:
            def query_all(self, sql, params=()):
                return self._conn.execute(sql, params).fetchall()
        ''')
    # The facade forwards a variable; the text is extracted at the real
    # call sites, not here, so this must not be reported or extracted.
    assert corpus.statements == []
    assert corpus.findings == []


def test_no_params_call_is_arity_zero(tmp_path):
    corpus = _extract(tmp_path, '''
        def sweep(db):
            db.execute("DELETE FROM matches")
        ''')
    statement = corpus.statements[0]
    assert statement.no_params and statement.arity == 0


def test_named_dict_parameters_are_captured(tmp_path):
    corpus = _extract(tmp_path, '''
        SQL = "UPDATE jobs SET state = :state WHERE job_id = :job_id"

        def mark(db, job_id):
            db.execute(SQL, {"state": "held", "job_id": job_id})
        ''')
    statement = corpus.statements[0]
    assert sorted(statement.named) == ["job_id", "state"]
    assert statement.arity is None
