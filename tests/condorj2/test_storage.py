"""Tests for the storage engine, batched execution and the set-oriented
scheduling pass.

Covers the storage-layer contracts the cost model depends on:

* prepared-statement cache hit/miss accounting (LRU semantics);
* batched execution charging per-row verb counts plus one batch;
* the one-statement scheduling pass producing exactly the matches the
  old row-at-a-time Python loop produced on a seeded workload;
* dependency gating across ``jobs``/``job_history``;
* O(1) statements per scheduling pass, independent of queue length.
"""

import random

import pytest

from repro.cluster import JobSpec
from repro.condorj2.beans import BeanContainer
from repro.condorj2.costs import CasCostModel
from repro.condorj2.database import Database
from repro.condorj2.logic import (
    HeartbeatService,
    LifecycleService,
    SchedulingService,
    SubmissionService,
)
from repro.condorj2.storage import (
    MemoryStorageEngine,
    PreparedStatementCache,
    SqliteStorageEngine,
    StatementCounts,
    StorageConfigError,
    WalStorageEngine,
    available_engines,
    create_engine,
    parse_storage_url,
)


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


@pytest.fixture
def services():
    container = BeanContainer(Database())
    submission = SubmissionService(container)
    scheduling = SchedulingService(container)
    lifecycle = LifecycleService(container)
    heartbeat = HeartbeatService(container, scheduling, lifecycle)
    return container, submission, scheduling, lifecycle, heartbeat


def register_machine(heartbeat, name="m1", vm_count=2, now=0.0):
    heartbeat.register_machine({"name": name, "vm_count": vm_count}, now)


# ----------------------------------------------------------------------
# prepared-statement cache
# ----------------------------------------------------------------------
def test_cache_hits_and_misses_are_counted(db):
    db.execute("SELECT 1")
    db.execute("SELECT 1")
    db.execute("SELECT 2")
    assert db.statement_cache.misses == 2
    assert db.statement_cache.hits == 1
    assert db.counts.prepared_misses == 2
    assert db.counts.prepared_hits == 1
    assert db.statement_cache.hit_rate() == pytest.approx(1 / 3)


def test_cache_evicts_least_recently_used():
    cache = PreparedStatementCache(capacity=2)
    cache.prepare("a")
    cache.prepare("b")
    cache.prepare("a")  # refresh a: b is now LRU
    cache.prepare("c")  # evicts b
    assert cache.evictions == 1
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.prepare("b") is False  # re-admitted as a miss


def test_cache_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PreparedStatementCache(capacity=0)


def test_engine_cache_size_is_configurable():
    engine = SqliteStorageEngine(statement_cache_size=3)
    db = Database(engine=engine)
    for i in range(5):
        db.execute(f"SELECT {i}")  # sql-ident: distinct statement texts
    assert len(db.statement_cache) == 3
    assert db.statement_cache.evictions == 2
    db.close()


def test_cost_model_wires_cache_size_into_cas():
    from repro.condorj2 import CasCostModel as Costs
    from repro.condorj2.cas import CondorJ2ApplicationServer
    from repro.sim.cpu import quad_xeon
    from repro.sim.kernel import Simulator
    from repro.sim.network import Network

    sim = Simulator(seed=0)
    cas = CondorJ2ApplicationServer(
        sim, quad_xeon(sim, "srv"), Network(sim),
        costs=Costs(prepared_statement_cache_size=7),
    )
    assert cas.db.statement_cache.capacity == 7


# ----------------------------------------------------------------------
# batched execution accounting
# ----------------------------------------------------------------------
def test_executemany_counts_per_row_and_one_batch(db):
    before = db.counts.snapshot()
    db.executemany(
        "INSERT INTO users (user_name, created_at) VALUES (?, ?)",
        [(f"u{i}", 0.0) for i in range(25)],
    )
    delta = db.counts.delta(before)
    assert delta.insert == 25  # per-row, exactly as 25 single statements
    assert delta.batches == 1
    assert db.table_count("users") == 25


def test_batch_cpu_cost_equals_per_row_cost_plus_dispatch():
    costs = CasCostModel()
    rowwise = StatementCounts(insert=100)
    batched = StatementCounts(insert=100, batches=1)
    assert costs.sql_cost_seconds(batched) == pytest.approx(
        costs.sql_cost_seconds(rowwise) + costs.batch_dispatch_seconds
    )


def test_prepare_cost_charged_per_cache_miss():
    costs = CasCostModel()
    delta = StatementCounts(select=2, prepared_misses=1, prepared_hits=1)
    assert costs.sql_cost_seconds(delta) == pytest.approx(
        2 * costs.select_seconds + costs.statement_prepare_seconds
    )


def test_executemany_rolls_back_with_transaction(db):
    with pytest.raises(RuntimeError):
        with db.transaction():
            db.executemany(
                "INSERT INTO users (user_name, created_at) VALUES (?, ?)",
                [("x", 0.0), ("y", 0.0)],
            )
            raise RuntimeError("abort")
    assert db.table_count("users") == 0


def test_pluggable_engine_is_used(db):
    engine = SqliteStorageEngine()
    database = Database(engine=engine)
    database.execute("SELECT 1")
    assert engine.counts.select == 1
    assert database.counts is engine.counts
    database.close()


def test_completion_batch_sizes_share_statement_text(services):
    """The whole lifecycle flow converges on a fixed SQL working set:
    a different completion batch size must not mint new cache entries."""
    container, submission, scheduling, lifecycle, heartbeat = services
    register_machine(heartbeat, "m1", vm_count=3)

    def run_batch(specs):
        submission.submit_jobs(specs, now=0.0)
        scheduling.run_pass(now=1.0)
        pairs = [
            (row["job_id"], row["vm_id"])
            for row in container.db.query_all("SELECT job_id, vm_id FROM matches")
        ]
        for job_id, vm_id in pairs:
            lifecycle.accept_match(job_id, vm_id, now=2.0)
        lifecycle.complete_jobs(pairs, now=3.0)

    run_batch([JobSpec()])
    misses_before = container.db.statement_cache.misses
    run_batch([JobSpec(), JobSpec(), JobSpec()])
    assert container.db.statement_cache.misses == misses_before


# ----------------------------------------------------------------------
# set-oriented scheduling pass vs the row-at-a-time reference loop
# ----------------------------------------------------------------------
def _reference_pass_pairs(db, limit=1000):
    """The pre-refactor algorithm: ranked lists zipped in Python.

    Dependency gating is applied before the limit (the set form's
    semantics; the old loop let gated jobs consume limit slots, which
    under-filled VMs — a bug the set-oriented pass fixed).
    """
    vms = [
        row["vm_id"]
        for row in db.query_all(
            """
            SELECT v.vm_id
            FROM vms v
            JOIN machines m ON m.machine_name = v.machine_name
            WHERE v.state = 'idle'
              AND m.state = 'alive'
              AND v.vm_id NOT IN (SELECT vm_id FROM matches)
              AND v.vm_id NOT IN (SELECT vm_id FROM runs)
            ORDER BY v.vm_id
            LIMIT ?
            """,
            (limit,),
        )
    ]
    eligible = []
    for row in db.query_all(
        """
        SELECT j.job_id
        FROM jobs j
        JOIN users u ON u.user_name = j.owner
        WHERE j.state = 'idle'
        ORDER BY u.priority ASC, j.job_id ASC
        """
    ):
        pending = db.scalar(
            """
            SELECT COUNT(*) FROM job_dependencies d
            JOIN jobs p ON p.job_id = d.depends_on_job_id
            WHERE d.job_id = ?
            """,
            (row["job_id"],),
        )
        if not pending:
            eligible.append(row["job_id"])
        if len(eligible) >= len(vms):
            break
    return list(zip(eligible, vms))


def _seed_workload(services, rng):
    """A messy pool: machines in all states, jobs in all states."""
    container, submission, scheduling, lifecycle, heartbeat = services
    for m in range(12):
        register_machine(heartbeat, f"m{m:02d}", vm_count=rng.randint(1, 4))
    # Most machines go silent and are swept to 'missing'; a couple keep
    # heartbeating, so the pass must skip VMs on dead machines.
    for name in ("m00", "m01", "m02", "m03"):
        heartbeat.process({"machine": name, "vms": [], "events": []}, now=500.0)
    heartbeat.mark_missing_machines(now=1000.0, timeout_seconds=900.0)
    for name in ("m00", "m01", "m02", "m03"):
        heartbeat.process({"machine": name, "vms": [], "events": []}, now=1000.0)

    owners = [f"user{u}" for u in range(5)]
    specs = []
    for _ in range(60):
        spec = JobSpec(owner=rng.choice(owners), run_seconds=rng.uniform(10, 90))
        if specs and rng.random() < 0.4:
            parents = rng.sample(specs, k=min(len(specs), rng.randint(1, 3)))
            spec.depends_on = tuple(parent.job_id for parent in parents)
        specs.append(spec)
    submission.submit_jobs(specs, now=1.0)
    for owner in owners:
        container.db.execute(
            "UPDATE users SET priority = ? WHERE user_name = ?",
            (rng.random(), owner),
        )
    # Run some jobs to completion so history-gated dependencies open up,
    # and leave some matches/runs in flight.
    scheduling.run_pass(now=2.0)
    matches = container.db.query_all("SELECT job_id, vm_id FROM matches")
    for index, row in enumerate(matches):
        if index % 3 == 0:
            continue  # leave pending
        lifecycle.accept_match(row["job_id"], row["vm_id"], now=3.0)
        if index % 3 == 1:
            lifecycle.complete_job(row["job_id"], row["vm_id"], now=50.0)
    return container


@pytest.mark.parametrize("seed", [7, 21, 1234])
def test_set_oriented_pass_matches_reference_loop(services, seed):
    container, _, scheduling, _, _ = services
    rng = random.Random(seed)
    _seed_workload(services, rng)
    expected = _reference_pass_pairs(container.db)
    before = {
        (row["job_id"], row["vm_id"])
        for row in container.db.query_all("SELECT job_id, vm_id FROM matches")
    }
    created = scheduling.run_pass(now=100.0)
    after = [
        (row["job_id"], row["vm_id"])
        for row in container.db.query_all(
            "SELECT job_id, vm_id FROM matches ORDER BY vm_id"
        )
        if (row["job_id"], row["vm_id"]) not in before
    ]
    assert created == len(expected)
    assert sorted(after) == sorted(expected)
    # Every matched job was flipped by the single set UPDATE.
    for job_id, _ in expected:
        state = container.db.scalar(
            "SELECT state FROM jobs WHERE job_id = ?", (job_id,)
        )
        assert state == "matched"


# ----------------------------------------------------------------------
# dependency gating across jobs / job_history
# ----------------------------------------------------------------------
def test_dependency_gates_until_parent_reaches_history(services):
    container, submission, scheduling, lifecycle, heartbeat = services
    register_machine(heartbeat, vm_count=2)
    parent = JobSpec(run_seconds=30.0)
    child = JobSpec(depends_on=(parent.job_id,))
    submission.submit_jobs([parent, child], now=0.0)
    scheduling.run_pass(now=1.0)
    matched = [
        row["job_id"]
        for row in container.db.query_all("SELECT job_id FROM matches")
    ]
    assert matched == [parent.job_id]  # child gated: parent still in jobs
    match = container.db.query_one("SELECT vm_id FROM matches")
    lifecycle.accept_match(parent.job_id, match["vm_id"], now=2.0)
    lifecycle.complete_job(parent.job_id, match["vm_id"], now=32.0)
    assert container.db.scalar(
        "SELECT COUNT(*) FROM job_history WHERE job_id = ?", (parent.job_id,)
    ) == 1
    scheduling.run_pass(now=33.0)
    matched = [
        row["job_id"]
        for row in container.db.query_all("SELECT job_id FROM matches")
    ]
    assert child.job_id in matched


def test_dependency_on_unknown_job_does_not_gate(services):
    container, submission, scheduling, _, heartbeat = services
    register_machine(heartbeat, vm_count=1)
    orphan = JobSpec(depends_on=(987654321,))
    submission.submit_jobs([orphan], now=0.0)
    assert scheduling.run_pass(now=1.0) == 1


def test_duplicate_dependency_ids_do_not_abort_batch(services):
    container, submission, _, _, _ = services
    parent = JobSpec()
    child = JobSpec(depends_on=(parent.job_id, parent.job_id))
    submission.submit_jobs([parent, child], now=0.0)
    assert container.db.table_count("job_dependencies") == 1
    assert container.db.table_count("jobs") == 2


def test_dependency_edges_cascade_with_job_deletion(services):
    container, submission, _, _, _ = services
    parent = JobSpec()
    child = JobSpec(depends_on=(parent.job_id,))
    submission.submit_jobs([parent, child], now=0.0)
    assert container.db.table_count("job_dependencies") == 1
    submission.remove_job(child.job_id)
    assert container.db.table_count("job_dependencies") == 0


# ----------------------------------------------------------------------
# O(1) statements per scheduling pass
# ----------------------------------------------------------------------
def _statements_for_queue_depth(n_jobs):
    container = BeanContainer(Database())
    submission = SubmissionService(container)
    scheduling = SchedulingService(container)
    lifecycle = LifecycleService(container)
    heartbeat = HeartbeatService(container, scheduling, lifecycle)
    for m in range(4):
        register_machine(heartbeat, f"m{m}", vm_count=4)
    submission.submit_jobs(
        [JobSpec(owner=f"u{i % 7}") for i in range(n_jobs)], now=0.0
    )
    before = container.db.counts.snapshot()
    created = scheduling.run_pass(now=1.0)
    delta = container.db.counts.delta(before)
    assert created == 16  # all VMs filled regardless of depth
    return delta.statements, delta.total(), delta.commits


def test_run_pass_statement_count_flat_in_queue_length():
    shallow = _statements_for_queue_depth(50)
    deep = _statements_for_queue_depth(2000)
    assert shallow == deep
    statements, row_work, commits = deep
    assert statements == 2  # one INSERT..SELECT, one set UPDATE
    assert row_work == 32  # per-row CPU accounting: 16 inserts + 16 updates
    assert commits == 1


def test_set_dml_charges_per_affected_row(services):
    """The set-oriented pass costs the CPU model what the old loop did."""
    container, submission, scheduling, _, heartbeat = services
    register_machine(heartbeat, vm_count=4)
    submission.submit_jobs([JobSpec() for _ in range(10)], now=0.0)
    before = container.db.counts.snapshot()
    created = scheduling.run_pass(now=1.0)
    delta = container.db.counts.delta(before)
    assert created == 4
    assert delta.insert == 4  # one INSERT..SELECT, four match rows
    assert delta.update == 4  # one set UPDATE, four jobs flipped
    assert delta.statements == 2


def test_idle_pass_executes_single_statement(services):
    container, _, scheduling, _, _ = services
    before = container.db.counts.snapshot()
    assert scheduling.run_pass(now=1.0) == 0
    delta = container.db.counts.delta(before)
    assert delta.statements == 1  # the INSERT..SELECT found nothing; no UPDATE
    assert delta.total() == 1  # a no-op statement still costs one probe


# ----------------------------------------------------------------------
# engine factory / registry
# ----------------------------------------------------------------------

def test_registry_lists_all_three_engines():
    assert set(available_engines()) >= {"sqlite", "memory", "wal"}


def test_create_engine_resolves_names_and_urls(tmp_path, monkeypatch):
    for spec, expected in (
        ("sqlite", SqliteStorageEngine),
        ("memory", MemoryStorageEngine),
        ("wal", WalStorageEngine),
        ("memory://", MemoryStorageEngine),
        (f"wal://{tmp_path}/pool-wal", WalStorageEngine),
    ):
        engine = create_engine(spec)
        assert isinstance(engine, expected), spec
        engine.close()
    monkeypatch.setenv("CONDORJ2_STORAGE_ENGINE", "wal")
    engine = create_engine()
    assert isinstance(engine, WalStorageEngine)
    engine.close()


def test_unknown_backend_raises_structured_fault():
    """A typo'd backend name is a structured StorageConfigError naming
    the offender and the alternatives — never a silent SQLite file."""
    for spec in ("postgres", "postgres://somewhere/db", "Wal"):
        with pytest.raises(StorageConfigError) as excinfo:
            create_engine(spec)
        fault = excinfo.value
        assert fault.backend in ("postgres", "Wal")
        assert set(fault.available) >= {"memory", "sqlite", "wal"}
        assert "registered engines" in str(fault)


def test_unknown_env_default_raises_structured_fault(monkeypatch):
    monkeypatch.setenv("CONDORJ2_STORAGE_ENGINE", "bogus")
    with pytest.raises(StorageConfigError) as excinfo:
        create_engine()
    assert excinfo.value.backend == "bogus"


def test_plain_paths_still_resolve_to_sqlite(tmp_path):
    """Non-identifier specs keep the historical SQLite-path behavior."""
    for spec in (":memory:", str(tmp_path / "pool.db"), "sqlite::memory:"):
        backend, _ = parse_storage_url(spec)
        assert backend == "sqlite", spec
