"""Unit tests for the section 6 future-work services."""

import pytest

from repro.condorj2.beans import BeanContainer
from repro.condorj2.database import Database, DatabaseError
from repro.condorj2.datamgmt import DatasetService
from repro.condorj2.provenance import ProvenanceService


@pytest.fixture
def container():
    return BeanContainer(Database())


@pytest.fixture
def datasets(container):
    return DatasetService(container, default_k=2)


@pytest.fixture
def provenance(container):
    return ProvenanceService(container)


# ----------------------------------------------------------------------
# datasets / k-safety
# ----------------------------------------------------------------------
def test_register_and_lookup(datasets):
    dataset_id = datasets.register_dataset("genome.fa", "alice", 512.0, now=1.0)
    assert datasets.dataset_id("genome.fa") == dataset_id
    assert datasets.dataset_id("missing") is None


def test_duplicate_name_rejected(datasets):
    datasets.register_dataset("d", "alice", 1.0, now=0.0)
    with pytest.raises(DatabaseError):
        datasets.register_dataset("d", "bob", 2.0, now=1.0)


def test_k_safety_must_be_positive(datasets):
    with pytest.raises(DatabaseError):
        datasets.register_dataset("d", "a", 1.0, now=0.0, k_safety=0)


def test_replicas_and_under_replication(datasets):
    d1 = datasets.register_dataset("d1", "a", 10.0, now=0.0)  # k=2
    d2 = datasets.register_dataset("d2", "a", 10.0, now=0.0, k_safety=1)
    datasets.add_replica(d1, "m1", now=1.0)
    datasets.add_replica(d2, "m2", now=1.0)
    under = datasets.under_replicated()
    assert [u["name"] for u in under] == ["d1"]
    assert under[0]["valid_replicas"] == 1
    datasets.add_replica(d1, "m3", now=2.0)
    assert datasets.under_replicated() == []


def test_stale_replicas_do_not_count(datasets):
    d1 = datasets.register_dataset("d1", "a", 10.0, now=0.0)
    datasets.add_replica(d1, "m1", now=1.0)
    datasets.add_replica(d1, "m2", now=1.0)
    assert datasets.under_replicated() == []
    datasets.invalidate_replica(d1, "m2")
    assert [u["name"] for u in datasets.under_replicated()] == ["d1"]
    assert datasets.replica_machines(d1) == ["m1"]


def test_repair_plan_avoids_existing_holders(datasets):
    d1 = datasets.register_dataset("d1", "a", 10.0, now=0.0)
    datasets.add_replica(d1, "m1", now=1.0)
    plan = datasets.repair_plan(["m1", "m2", "m3"])
    assert len(plan) == 1
    assert plan[0]["target_machine"] in ("m2", "m3")
    assert plan[0]["source_machines"] == ["m1"]


def test_repair_plan_multiple_transfers(datasets):
    d1 = datasets.register_dataset("d1", "a", 10.0, now=0.0, k_safety=3)
    datasets.add_replica(d1, "m1", now=1.0)
    plan = datasets.repair_plan(["m1", "m2", "m3", "m4"])
    assert len(plan) == 2
    targets = {p["target_machine"] for p in plan}
    assert "m1" not in targets


def test_placement_query_requires_all_inputs(datasets):
    d1 = datasets.register_dataset("in1", "a", 1.0, now=0.0)
    d2 = datasets.register_dataset("in2", "a", 1.0, now=0.0)
    datasets.add_replica(d1, "m1", now=1.0)
    datasets.add_replica(d2, "m1", now=1.0)
    datasets.add_replica(d1, "m2", now=1.0)
    assert datasets.machines_with_inputs(["in1", "in2"]) == ["m1"]
    assert datasets.machines_with_inputs(["in1"]) == ["m1", "m2"]
    assert datasets.machines_with_inputs([]) == []


# ----------------------------------------------------------------------
# provenance
# ----------------------------------------------------------------------
def test_record_and_derivation(provenance):
    provenance.record("out.dat", job_id=7, executable="/bin/sim", now=5.0,
                      executable_version="2.1", inputs=("a.in", "b.in"),
                      input_versions=("v1", "v2"))
    record = provenance.derivation_of("out.dat")
    assert record["job_id"] == 7
    assert record["executable"] == "/bin/sim"
    assert record["executable_version"] == "2.1"
    assert record["inputs"] == ["a.in", "b.in"]
    assert record["input_versions"] == ["v1", "v2"]


def test_derivation_of_unknown_output(provenance):
    assert provenance.derivation_of("ghost.dat") is None


def test_latest_record_wins(provenance):
    provenance.record("out", 1, "/bin/v1", now=1.0)
    provenance.record("out", 2, "/bin/v2", now=2.0)
    assert provenance.derivation_of("out")["executable"] == "/bin/v2"


def test_lineage_walks_ancestry(provenance):
    provenance.record("raw.norm", 1, "/bin/normalise", now=1.0, inputs=("raw",))
    provenance.record("model", 2, "/bin/train", now=2.0, inputs=("raw.norm",))
    provenance.record("report", 3, "/bin/report", now=3.0, inputs=("model",))
    lineage = provenance.lineage("report")
    assert [r["output_name"] for r in lineage] == ["report", "model", "raw.norm"]


def test_lineage_handles_shared_inputs_once(provenance):
    provenance.record("a", 1, "/bin/x", now=1.0, inputs=("base",))
    provenance.record("b", 2, "/bin/x", now=1.0, inputs=("base",))
    provenance.record("c", 3, "/bin/y", now=2.0, inputs=("a", "b"))
    provenance.record("base", 0, "/bin/gen", now=0.5)
    lineage = provenance.lineage("c")
    names = [r["output_name"] for r in lineage]
    assert names.count("base") == 1
    assert set(names) == {"c", "a", "b", "base"}


def test_outputs_derived_from(provenance):
    provenance.record("x1", 1, "/bin/x", now=1.0, inputs=("common", "other"))
    provenance.record("x2", 2, "/bin/x", now=1.0, inputs=("common",))
    provenance.record("x3", 3, "/bin/x", now=1.0, inputs=("unrelated",))
    assert provenance.outputs_derived_from("common") == ["x1", "x2"]


def test_executables_used(provenance):
    provenance.record("o1", 1, "/bin/a", now=1.0)
    provenance.record("o2", 2, "/bin/b", now=1.0)
    assert provenance.executables_used([1, 2]) == ["/bin/a", "/bin/b"]
    assert provenance.executables_used([]) == []
