"""Unit tests for the ClassAd container and matchmaking."""

import pytest

from repro.classads import ClassAd, symmetric_match


MACHINE_AD = """
MachineName = "node01"
Arch = "INTEL"
OpSys = "LINUX"
Memory = 512
KFlops = 21893
Requirements = TARGET.ImageSize <= MY.Memory
Rank = 0
"""

JOB_AD = """
Owner = "alice"
Cmd = "/bin/science"
ImageSize = 64
Requirements = (TARGET.Arch == "INTEL") && (TARGET.OpSys == "LINUX")
Rank = TARGET.KFlops
"""


def test_parse_multi_statement_ad():
    ad = ClassAd.parse(MACHINE_AD)
    assert ad.get("MachineName") == "node01"
    assert ad.get("Memory") == 512
    assert "requirements" in ad


def test_setitem_with_python_values():
    ad = ClassAd()
    ad["Count"] = 3
    ad["Ratio"] = 0.5
    ad["Name"] = "x"
    ad["Flag"] = True
    ad["Tags"] = ["a", "b"]
    assert ad.get("Count") == 3
    assert ad.get("Ratio") == 0.5
    assert ad.get("Name") == "x"
    assert ad.get("Flag") is True
    assert ad.get("Tags") == ["a", "b"]


def test_setitem_none_becomes_undefined():
    ad = ClassAd()
    ad["x"] = None
    assert ad.get("x", "fallback") == "fallback"


def test_set_expr_from_string():
    ad = ClassAd({"base": 21})
    ad.set_expr("doubled", "base * 2")
    assert ad.get("doubled") == 42


def test_contains_delete_len_iter():
    ad = ClassAd({"A": 1, "B": 2})
    assert "a" in ad and "B" in ad
    assert len(ad) == 2
    del ad["A"]
    assert "A" not in ad
    assert list(ad) == ["B"]


def test_get_default_for_missing():
    ad = ClassAd()
    assert ad.get("nothing") is None
    assert ad.get("nothing", 7) == 7


def test_evaluate_missing_attribute_is_undefined():
    from repro.classads import is_undefined

    assert is_undefined(ClassAd().evaluate("ghost"))


def test_match_succeeds_for_compatible_ads():
    machine = ClassAd.parse(MACHINE_AD)
    job = ClassAd.parse(JOB_AD)
    assert machine.requirements_satisfied_by(job)
    assert job.requirements_satisfied_by(machine)
    assert symmetric_match(machine, job)


def test_match_fails_on_architecture_mismatch():
    machine = ClassAd.parse(MACHINE_AD)
    machine["Arch"] = "SPARC"
    job = ClassAd.parse(JOB_AD)
    assert not job.requirements_satisfied_by(machine)
    assert not symmetric_match(machine, job)


def test_match_fails_when_job_too_big():
    machine = ClassAd.parse(MACHINE_AD)
    job = ClassAd.parse(JOB_AD)
    job["ImageSize"] = 100000
    assert not machine.requirements_satisfied_by(job)


def test_missing_requirements_matches_anything():
    anything = ClassAd({"x": 1})
    job = ClassAd.parse(JOB_AD)
    assert anything.requirements_satisfied_by(job)


def test_undefined_requirements_do_not_match():
    machine = ClassAd.parse(MACHINE_AD)
    job = ClassAd.parse(JOB_AD)
    del job["ImageSize"]
    # machine's Requirements references TARGET.ImageSize -> UNDEFINED -> no match
    assert not machine.requirements_satisfied_by(job)


def test_rank_evaluates_against_target():
    machine = ClassAd.parse(MACHINE_AD)
    job = ClassAd.parse(JOB_AD)
    assert job.rank_of(machine) == pytest.approx(21893.0)


def test_rank_missing_or_abnormal_is_zero():
    job = ClassAd.parse(JOB_AD)
    no_kflops = ClassAd({"Arch": "INTEL"})
    assert job.rank_of(no_kflops) == 0.0
    no_rank = ClassAd({})
    assert no_rank.rank_of(job) == 0.0


def test_rank_orders_machines():
    job = ClassAd.parse(JOB_AD)
    slow = ClassAd({"KFlops": 1000})
    fast = ClassAd({"KFlops": 90000})
    assert job.rank_of(fast) > job.rank_of(slow)


def test_copy_is_independent():
    ad = ClassAd({"x": 1})
    dup = ad.copy()
    dup["x"] = 2
    assert ad.get("x") == 1
    assert dup.get("x") == 2


def test_unparse_round_trips():
    ad = ClassAd.parse(MACHINE_AD)
    reparsed = ClassAd.parse(ad.unparse())
    assert reparsed.get("Memory") == 512
    assert reparsed.get("MachineName") == "node01"
    job = ClassAd.parse(JOB_AD)
    assert symmetric_match(reparsed, job) == symmetric_match(ad, job)


def test_malformed_statement_raises():
    with pytest.raises(ValueError):
        ClassAd.parse("just a phrase without equals")


def test_repr_contains_attributes():
    ad = ClassAd({"Alpha": 1})
    assert "Alpha" in repr(ad)
