"""Unit tests for ClassAd builtin functions."""

import pytest

from repro.classads import ClassAd, is_error, is_undefined


def ev(source):
    return ClassAd().evaluate_expr(source)


def test_floor_ceiling_round():
    assert ev("floor(3.7)") == 3
    assert ev("ceiling(3.2)") == 4
    assert ev("round(3.5)") == 4
    assert ev("round(2.4)") == 2
    assert ev("floor(-1.5)") == -2


def test_int_and_real_conversions():
    assert ev("int(3.9)") == 3
    assert ev('int("42")') == 42
    assert ev("real(3)") == 3.0
    assert ev('real("2.5")') == 2.5
    assert is_error(ev('int("nope")'))


def test_string_conversion():
    assert ev("string(3)") == "3"
    assert ev("string(TRUE)") == "TRUE"
    assert ev('string("x")') == "x"


def test_is_undefined_is_error_are_non_strict():
    assert ev("isUndefined(Missing)") is True
    assert ev("isUndefined(3)") is False
    assert ev("isError(1/0)") is True
    assert ev("isError(3)") is False


def test_if_then_else():
    assert ev("ifThenElse(TRUE, 1, 2)") == 1
    assert ev("ifThenElse(0, 1, 2)") == 2
    assert is_undefined(ev("ifThenElse(Missing, 1, 2)"))


def test_min_max_pow():
    assert ev("min(3, 1, 2)") == 1
    assert ev("max(3, 1, 2)") == 3
    assert ev("pow(2, 10)") == 1024
    assert is_error(ev("min()"))


def test_strcmp_and_stricmp():
    assert ev('strcmp("a", "b")') < 0
    assert ev('strcmp("b", "a")') > 0
    assert ev('strcmp("a", "a")') == 0
    assert ev('stricmp("ABC", "abc")') == 0


def test_case_functions():
    assert ev('toUpper("abc")') == "ABC"
    assert ev('toLower("ABC")') == "abc"


def test_size_of_string_and_list():
    assert ev('size("hello")') == 5
    assert ev("size({1, 2, 3})") == 3
    assert is_error(ev("size(3)"))


def test_substr_variants():
    assert ev('substr("hello", 1)') == "ello"
    assert ev('substr("hello", 1, 3)') == "ell"
    assert ev('substr("hello", -3)') == "llo"
    assert ev('substr("hello", 0, -1)') == "hell"


def test_string_list_functions():
    assert ev('stringListMember("b", "a, b, c")') is True
    assert ev('stringListMember("z", "a, b, c")') is False
    assert ev('stringListIMember("B", "a, b, c")') is True
    assert ev('stringListSize("a, b, c")') == 3
    assert ev('stringListSize("")') == 0


def test_regexp():
    assert ev('regexp("^lin", "linux")') is True
    assert ev('regexp("win", "linux")') is False
    assert is_error(ev('regexp("(", "linux")'))


def test_member_of_list():
    assert ev("member(2, {1, 2, 3})") is True
    assert ev("member(5, {1, 2, 3})") is False
    assert is_error(ev("member(1, 2)"))


def test_unknown_function_is_error():
    assert is_error(ev("noSuchFunction(1)"))


def test_builtins_case_insensitive_names():
    assert ev("FLOOR(3.9)") == 3
    assert ev("Min(2, 1)") == 1


def test_strict_builtins_propagate_abnormal():
    assert is_undefined(ev("floor(Missing)"))
    assert is_error(ev("floor(1/0)"))
