"""Unit tests for ClassAd evaluation semantics."""

import pytest

from repro.classads import ClassAd, ERROR, UNDEFINED, is_error, is_undefined
from repro.classads.values import values_identical


def ev(source, my=None, target=None):
    ad = my if my is not None else ClassAd()
    return ad.evaluate_expr(source, target)


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------
def test_integer_arithmetic():
    assert ev("1 + 2 * 3") == 7
    assert ev("10 - 4") == 6
    assert ev("7 / 2") == 3          # C-style truncation
    assert ev("-7 / 2") == -3
    assert ev("7 % 3") == 1
    assert ev("2 * 3.5") == 7.0


def test_division_by_zero_is_error():
    assert is_error(ev("1 / 0"))
    assert is_error(ev("1 % 0"))


def test_string_concatenation_with_plus():
    assert ev('"foo" + "bar"') == "foobar"


def test_arithmetic_on_string_is_error():
    assert is_error(ev('"foo" * 2'))


def test_unary_minus_and_not():
    assert ev("-5") == -5
    assert ev("!TRUE") is False
    assert ev("!0") is True


def test_booleans_coerce_to_numbers():
    assert ev("TRUE + TRUE") == 2
    assert ev("FALSE * 10") == 0


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def test_numeric_comparisons():
    assert ev("3 < 4") is True
    assert ev("3 >= 4") is False
    assert ev("3 == 3.0") is True
    assert ev("3 != 4") is True


def test_string_comparison_case_insensitive():
    assert ev('"LINUX" == "linux"') is True
    assert ev('"abc" < "abd"') is True


def test_mixed_type_equality_is_error():
    assert is_error(ev('"abc" == 3'))


# ----------------------------------------------------------------------
# three-valued logic
# ----------------------------------------------------------------------
def test_undefined_propagates_through_arithmetic():
    assert is_undefined(ev("Missing + 1"))
    assert is_undefined(ev("Missing < 4"))


def test_and_short_circuits_undefined():
    assert ev("FALSE && Missing") is False
    assert ev("Missing && FALSE") is False
    assert is_undefined(ev("TRUE && Missing"))


def test_or_short_circuits_undefined():
    assert ev("TRUE || Missing") is True
    assert ev("Missing || TRUE") is True
    assert is_undefined(ev("FALSE || Missing"))


def test_error_dominates_undefined_in_logic():
    assert is_error(ev("TRUE && (1/0)"))
    assert ev("FALSE && (1/0)") is False


def test_not_of_undefined_is_undefined():
    assert is_undefined(ev("!Missing"))


# ----------------------------------------------------------------------
# meta operators
# ----------------------------------------------------------------------
def test_meta_equal_on_undefined():
    assert ev("Missing =?= UNDEFINED") is True
    assert ev("Missing =?= 1") is False
    assert ev("Missing =!= UNDEFINED") is False


def test_meta_equal_distinguishes_types():
    assert ev('"1" =?= 1') is False
    assert ev("1 =?= 1.0") is True     # numbers compare across int/real
    assert ev("TRUE =?= 1") is False   # bools are not numbers for =?=


def test_is_isnt_keywords_evaluate():
    assert ev("Missing is UNDEFINED") is True
    assert ev("3 isnt UNDEFINED") is True


# ----------------------------------------------------------------------
# ternary
# ----------------------------------------------------------------------
def test_ternary_selects_branch():
    assert ev("1 < 2 ? 10 : 20") == 10
    assert ev("1 > 2 ? 10 : 20") == 20


def test_ternary_abnormal_condition_propagates():
    assert is_undefined(ev("Missing ? 1 : 2"))
    assert is_error(ev("(1/0) ? 1 : 2"))


def test_ternary_lazy_branches():
    # The unselected branch must not be evaluated (no ERROR produced).
    assert ev("TRUE ? 5 : (1/0)") == 5


# ----------------------------------------------------------------------
# attribute resolution
# ----------------------------------------------------------------------
def test_attribute_lookup_from_my():
    ad = ClassAd({"Memory": 512})
    assert ev("Memory * 2", my=ad) == 1024


def test_attribute_names_case_insensitive():
    ad = ClassAd({"OpSys": "LINUX"})
    assert ev('opsys == "LINUX"', my=ad) is True


def test_unscoped_lookup_falls_back_to_target():
    machine = ClassAd({"Memory": 512})
    job = ClassAd({})
    assert ev("Memory", my=job, target=machine) == 512


def test_scoped_lookup_does_not_fall_back():
    machine = ClassAd({"Memory": 512})
    job = ClassAd({})
    assert is_undefined(ev("MY.Memory", my=job, target=machine))
    assert ev("TARGET.Memory", my=job, target=machine) == 512


def test_target_attribute_evaluated_in_its_own_scope():
    # The machine's advertised Rate depends on its own Base attribute.
    machine = ClassAd({"Base": 10})
    machine.set_expr("Rate", "Base * 2")
    job = ClassAd({})
    assert ev("TARGET.Rate", my=job, target=machine) == 20


def test_circular_attribute_definition_is_error():
    ad = ClassAd()
    ad.set_expr("a", "b")
    ad.set_expr("b", "a")
    assert is_error(ad.evaluate("a"))


def test_self_recursive_attribute_is_error():
    ad = ClassAd()
    ad.set_expr("x", "x + 1")
    assert is_error(ad.evaluate("x"))


def test_computed_attributes_chain():
    ad = ClassAd({"base": 4})
    ad.set_expr("double", "base * 2")
    ad.set_expr("quad", "double * 2")
    assert ad.evaluate("quad") == 16


def test_values_identical_lists():
    assert values_identical([1, "a"], [1.0, "A"])
    assert not values_identical([1], [1, 2])
