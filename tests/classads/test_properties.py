"""Property-based tests for the ClassAd language.

These exercise invariants over randomly generated expressions and values:
parser/printer round-trips, evaluation totality (no crashes, always a
value), and the algebraic laws of the three-valued logic.
"""

from hypothesis import given, settings, strategies as st

from repro.classads import ClassAd, parse
from repro.classads.ast import BinaryOp, Literal
from repro.classads.evaluate import Environment, evaluate
from repro.classads.values import (
    ERROR,
    UNDEFINED,
    is_abnormal,
    is_true,
    value_repr,
    values_identical,
)

# ----------------------------------------------------------------------
# value strategies
# ----------------------------------------------------------------------
scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=12),
    st.just(UNDEFINED),
    st.just(ERROR),
)

#: Binary operators of the language, all total.
operators = st.sampled_from(
    ["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||", "=?=", "=!="]
)


@st.composite
def expressions(draw, depth=3):
    """Random expression trees over literals."""
    if depth == 0 or draw(st.booleans()):
        return Literal(draw(scalars))
    op = draw(operators)
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    return BinaryOp(op, left, right)


EMPTY_ENV = Environment(ClassAd())


@given(expressions())
@settings(max_examples=300)
def test_evaluation_is_total(expr):
    """Evaluation never raises: every tree produces some ClassAd value."""
    value = evaluate(expr, Environment(ClassAd()))
    assert isinstance(value, (bool, int, float, str, list)) or is_abnormal(value)


@given(scalars)
def test_value_repr_round_trips_scalars(value):
    """Printing a value and re-parsing it evaluates back to the same value.

    (Negative numbers re-parse as unary minus applied to a literal, so the
    comparison is on evaluated values, not tree shape.)
    """
    rendered = value_repr(value)
    reparsed = evaluate(parse(rendered), Environment(ClassAd()))
    assert values_identical(reparsed, value)


@given(scalars)
def test_meta_equality_is_reflexive(value):
    assert values_identical(value, value)


@given(scalars, scalars)
def test_meta_equality_is_symmetric(a, b):
    assert values_identical(a, b) == values_identical(b, a)


@given(expressions(), expressions())
@settings(max_examples=200)
def test_and_is_commutative_for_normal_operands(a, b):
    """a && b == b && a whenever neither side is abnormal.

    (With abnormal operands the result value is still equal — FALSE wins
    over both UNDEFINED and ERROR, ERROR over UNDEFINED — so commutativity
    holds for the full logic.)
    """
    forward = evaluate(BinaryOp("&&", a, b), Environment(ClassAd()))
    backward = evaluate(BinaryOp("&&", b, a), Environment(ClassAd()))
    assert values_identical(forward, backward)


@given(expressions(), expressions())
@settings(max_examples=200)
def test_or_is_commutative(a, b):
    forward = evaluate(BinaryOp("||", a, b), Environment(ClassAd()))
    backward = evaluate(BinaryOp("||", b, a), Environment(ClassAd()))
    assert values_identical(forward, backward)


@given(expressions())
@settings(max_examples=200)
def test_demorgan_not_and(expr):
    """!(a && a) === !a || !a (three-valued De Morgan instance)."""
    env = Environment(ClassAd())
    lhs = evaluate(parse(f"!(({expr}) && ({expr}))"), env)
    rhs = evaluate(parse(f"!({expr}) || !({expr})"), env)
    assert values_identical(lhs, rhs)


@given(expressions())
@settings(max_examples=150)
def test_parse_str_round_trip_preserves_value(expr):
    """str() output re-parses to a tree with the same evaluation."""
    env = Environment(ClassAd())
    direct = evaluate(expr, env)
    reparsed = evaluate(parse(str(expr)), env)
    assert values_identical(direct, reparsed)


@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_integer_division_matches_c_semantics(a, b):
    """Truncating division: (a/b)*b + a%b == a for nonzero b."""
    env = Environment(ClassAd())
    if b == 0:
        assert is_abnormal(evaluate(parse(f"({a}) / ({b})"), env))
        return
    quotient = evaluate(parse(f"({a}) / ({b})"), env)
    remainder = evaluate(parse(f"({a}) % ({b})"), env)
    assert quotient * b + remainder == a


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20))
def test_string_literals_round_trip_through_lexer(text):
    rendered = value_repr(text)
    expr = parse(rendered)
    assert isinstance(expr, Literal)
    assert expr.value == text


@given(st.dictionaries(
    st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True),
    st.integers(-100, 100),
    max_size=6,
))
def test_classad_unparse_round_trip(attrs):
    # Attribute names are case-insensitive; keep one spelling per name.
    unique = {}
    for name, value in attrs.items():
        unique.setdefault(name.lower(), (name, value))
    attrs = dict(unique.values())
    ad = ClassAd(attrs)
    reparsed = ClassAd.parse(ad.unparse())
    for name, value in attrs.items():
        assert reparsed.get(name) == value
