"""Unit tests for the ClassAd tokenizer."""

import pytest

from repro.classads.lexer import ClassAdSyntaxError, iter_statements, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


def test_tokenize_numbers():
    assert kinds("42") == [("number", "42")]
    assert kinds("3.14") == [("number", "3.14")]
    assert kinds("1e3") == [("number", "1e3")]
    assert kinds(".5") == [("number", ".5")]


def test_tokenize_identifiers_and_keywords():
    assert kinds("Memory") == [("ident", "Memory")]
    assert kinds("TRUE false") == [("keyword", "TRUE"), ("keyword", "false")]
    assert kinds("UNDEFINED") == [("keyword", "UNDEFINED")]


def test_tokenize_operators_greedy():
    assert kinds("=?=") == [("op", "=?=")]
    assert kinds("=!=") == [("op", "=!=")]
    assert kinds("<=") == [("op", "<=")]
    assert kinds("a<=b") == [("ident", "a"), ("op", "<="), ("ident", "b")]
    assert kinds("&&||") == [("op", "&&"), ("op", "||")]


def test_tokenize_string_with_escapes():
    tokens = tokenize(r'"a\"b\n"')
    assert tokens[0].kind == "string"
    assert tokens[0].value == 'a"b\n'


def test_tokenize_unterminated_string_raises():
    with pytest.raises(ClassAdSyntaxError):
        tokenize('"never closed')


def test_tokenize_dangling_escape_raises():
    with pytest.raises(ClassAdSyntaxError):
        tokenize('"bad\\')


def test_tokenize_unknown_character_raises():
    with pytest.raises(ClassAdSyntaxError):
        tokenize("a @ b")


def test_tokenize_eof_token_present():
    tokens = tokenize("x")
    assert tokens[-1].kind == "eof"


def test_tokens_carry_positions():
    tokens = tokenize("abc + def")
    assert tokens[0].position == 0
    assert tokens[1].position == 4
    assert tokens[2].position == 6


def test_iter_statements_splits_on_newlines_and_semicolons():
    source = "a = 1\nb = 2; c = 3"
    assert list(iter_statements(source)) == ["a = 1", "b = 2", "c = 3"]


def test_iter_statements_skips_blanks_and_comments():
    source = "\n# comment\na = 1\n\n"
    assert list(iter_statements(source)) == ["a = 1"]


def test_iter_statements_respects_strings():
    source = 'msg = "one; two\\" three"\nnext = 1'
    statements = list(iter_statements(source))
    assert len(statements) == 2
    assert statements[0].startswith("msg")
