"""Unit tests for the ClassAd parser."""

import pytest

from repro.classads.ast import AttrRef, BinaryOp, FuncCall, ListExpr, Literal, Ternary, UnaryOp
from repro.classads.lexer import ClassAdSyntaxError
from repro.classads.parser import parse
from repro.classads.values import ERROR, UNDEFINED


def test_parse_integer_and_real_literals():
    assert parse("42") == Literal(42)
    assert parse("3.5") == Literal(3.5)
    assert parse("1e2") == Literal(100.0)


def test_parse_boolean_and_abnormal_literals():
    assert parse("TRUE") == Literal(True)
    assert parse("False") == Literal(False)
    assert parse("UNDEFINED") == Literal(UNDEFINED)
    assert parse("ERROR") == Literal(ERROR)


def test_parse_string_literal():
    assert parse('"LINUX"') == Literal("LINUX")


def test_parse_attribute_reference():
    assert parse("Memory") == AttrRef("Memory")


def test_parse_scoped_references():
    assert parse("MY.Memory") == AttrRef("Memory", scope="my")
    assert parse("TARGET.OpSys") == AttrRef("OpSys", scope="target")
    assert parse("my . Disk") == AttrRef("Disk", scope="my")


def test_scope_fold_does_not_touch_strings():
    expr = parse('"my.Memory"')
    assert expr == Literal("my.Memory")


def test_parse_precedence_mul_over_add():
    expr = parse("1 + 2 * 3")
    assert isinstance(expr, BinaryOp) and expr.op == "+"
    assert expr.right == BinaryOp("*", Literal(2), Literal(3))


def test_parse_precedence_comparison_over_and():
    expr = parse("a < 3 && b > 4")
    assert isinstance(expr, BinaryOp) and expr.op == "&&"
    assert expr.left.op == "<"
    assert expr.right.op == ">"


def test_parse_and_binds_tighter_than_or():
    expr = parse("a || b && c")
    assert expr.op == "||"
    assert expr.right.op == "&&"


def test_parse_parentheses_override():
    expr = parse("(1 + 2) * 3")
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_parse_unary_operators():
    assert parse("-x") == UnaryOp("-", AttrRef("x"))
    assert parse("!done") == UnaryOp("!", AttrRef("done"))
    assert parse("--3") == UnaryOp("-", UnaryOp("-", Literal(3)))


def test_parse_ternary():
    expr = parse("a > 1 ? 10 : 20")
    assert isinstance(expr, Ternary)
    assert expr.then == Literal(10)
    assert expr.otherwise == Literal(20)


def test_parse_nested_ternary_right_associative():
    expr = parse("a ? 1 : b ? 2 : 3")
    assert isinstance(expr.otherwise, Ternary)


def test_parse_meta_equality_operators():
    assert parse("x =?= UNDEFINED").op == "=?="
    assert parse("x =!= 3").op == "=!="


def test_parse_is_isnt_keywords():
    assert parse("x is UNDEFINED").op == "=?="
    assert parse("x isnt ERROR").op == "=!="


def test_parse_function_call():
    expr = parse("floor(3.7)")
    assert expr == FuncCall("floor", (Literal(3.7),))


def test_parse_function_call_multiple_args():
    expr = parse('stringListMember("a", "a,b,c")')
    assert expr.name == "stringlistmember"
    assert len(expr.args) == 2


def test_parse_function_call_no_args():
    assert parse("foo()") == FuncCall("foo", ())


def test_parse_list_literal():
    expr = parse("{1, 2, 3}")
    assert expr == ListExpr((Literal(1), Literal(2), Literal(3)))
    assert parse("{}") == ListExpr(())


def test_parse_left_associativity():
    expr = parse("10 - 4 - 3")
    assert expr.op == "-"
    assert expr.left == BinaryOp("-", Literal(10), Literal(4))


def test_parse_realistic_requirements():
    expr = parse('(Arch == "INTEL") && (OpSys == "LINUX") && Memory >= 64')
    assert isinstance(expr, BinaryOp)
    assert expr.op == "&&"


def test_parse_trailing_garbage_raises():
    with pytest.raises(ClassAdSyntaxError):
        parse("1 + 2 extra")


def test_parse_unbalanced_paren_raises():
    with pytest.raises(ClassAdSyntaxError):
        parse("(1 + 2")


def test_parse_bare_keyword_scope_raises():
    with pytest.raises(ClassAdSyntaxError):
        parse("my && 1")


def test_parse_empty_input_raises():
    with pytest.raises(ClassAdSyntaxError):
        parse("")


def test_parse_str_round_trip():
    text = "(Memory >= 64) && (Arch == \"INTEL\")"
    expr = parse(text)
    reparsed = parse(str(expr))
    assert reparsed == expr
