"""Unit tests for job specs and records."""

import pytest

from repro.cluster import JobRecord, JobSpec, JobState, next_job_id


def test_job_ids_unique_and_increasing():
    first = next_job_id()
    second = next_job_id()
    assert second == first + 1
    a, b = JobSpec(), JobSpec()
    assert a.job_id != b.job_id


def test_spec_defaults():
    spec = JobSpec()
    assert spec.run_seconds == 60.0
    assert spec.owner == "user"
    assert spec.depends_on == ()


def test_spec_rejects_nonpositive_runtime():
    with pytest.raises(ValueError):
        JobSpec(run_seconds=0.0)
    with pytest.raises(ValueError):
        JobSpec(run_seconds=-5.0)


def test_spec_rejects_negative_image():
    with pytest.raises(ValueError):
        JobSpec(image_size_mb=-1)


def test_record_starts_idle():
    record = JobRecord(JobSpec())
    assert record.state == JobState.IDLE
    assert record.start_time is None
    assert record.attempts == 0


def test_record_lifecycle_success():
    record = JobRecord(JobSpec(run_seconds=10.0))
    record.mark_started(5.0, "vm0@node000")
    assert record.state == JobState.RUNNING
    assert record.start_time == 5.0
    assert record.vm_id == "vm0@node000"
    assert record.attempts == 1
    record.mark_completed(15.0)
    assert record.state == JobState.COMPLETED
    assert record.end_time == 15.0


def test_record_drop_returns_to_idle():
    record = JobRecord(JobSpec())
    record.mark_started(1.0, "vm")
    record.mark_dropped()
    assert record.state == JobState.IDLE
    assert record.drops == 1
    assert record.start_time is None
    assert record.vm_id is None
    record.mark_started(9.0, "vm2")
    assert record.attempts == 2


def test_record_job_id_shortcut():
    spec = JobSpec()
    assert JobRecord(spec).job_id == spec.job_id
