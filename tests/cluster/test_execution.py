"""Unit tests for the execution-environment model (drops, timeouts)."""

import pytest

from repro.cluster import ExecutionModel, JobSpec, PhysicalNode, RELIABLE_EXECUTION, VmState
from repro.sim import Simulator


def cpu_only_model(**kwargs):
    """A deterministic model with no disk component for exact timings."""
    defaults = dict(
        setup_cpu_seconds=1.0,
        setup_disk_seconds=0.0,
        teardown_cpu_seconds=0.5,
        teardown_disk_seconds=0.0,
        timeout_seconds=100.0,
        jitter_fraction=0.0,
        heavy_tail_prob=0.0,
    )
    defaults.update(kwargs)
    return ExecutionModel(**defaults)


def run_one(model, job, node=None, sim=None):
    sim = sim or Simulator()
    node = node or PhysicalNode(sim, "n0", cores=1, vm_count=1)
    vm = node.vms[0]
    process = sim.spawn(model.run_job(sim, vm, job))
    sim.run()
    assert process.error is None
    return sim, vm, process.result


def test_successful_run_produces_outcome():
    model = cpu_only_model()
    sim, vm, outcome = run_one(model, JobSpec(run_seconds=10.0))
    assert outcome.ok
    assert outcome.reason == ""
    assert vm.state == VmState.IDLE
    assert vm.jobs_completed == 1
    assert vm.jobs_dropped == 0
    # setup 1.0 + run 10.0 + teardown 0.5
    assert sim.now == pytest.approx(11.5)


def test_disk_component_adds_elapsed_time():
    model = cpu_only_model(setup_disk_seconds=2.0, teardown_disk_seconds=1.0)
    sim, _, outcome = run_one(model, JobSpec(run_seconds=10.0))
    assert outcome.ok
    # setup 1.0 cpu + 2.0 disk + run 10.0 + teardown 0.5 cpu + 1.0 disk
    assert sim.now == pytest.approx(14.5)


def test_slow_node_stretches_cpu_not_disk():
    sim = Simulator()
    node = PhysicalNode(sim, "slow", cores=1, speed=0.5, vm_count=1)
    model = cpu_only_model(setup_cpu_seconds=1.0, setup_disk_seconds=1.0,
                           teardown_cpu_seconds=0.0)
    _, _, outcome = run_one(model, JobSpec(run_seconds=5.0), node=node, sim=sim)
    assert outcome.ok
    # cpu setup doubled by speed (2.0), disk unaffected (1.0), run 5.0
    assert sim.now == pytest.approx(8.0)


def test_setup_timeout_drops_job():
    # Timeout shorter than the (uncontended) setup time guarantees a drop.
    model = cpu_only_model(setup_cpu_seconds=5.0, timeout_seconds=1.0,
                           teardown_cpu_seconds=0.0)
    sim, vm, outcome = run_one(model, JobSpec(run_seconds=10.0))
    assert not outcome.ok
    assert outcome.reason == "setup-timeout"
    assert vm.jobs_dropped == 1
    assert vm.jobs_completed == 0
    assert vm.state == VmState.IDLE
    # The job body never ran: only the setup time elapsed.
    assert sim.now == pytest.approx(5.0)


def test_cpu_contention_between_vms_causes_timeout():
    """Two VMs on one core: the second setup queues and exceeds timeout."""
    sim = Simulator()
    node = PhysicalNode(sim, "n0", cores=1, vm_count=2)
    model = cpu_only_model(setup_cpu_seconds=3.0, timeout_seconds=4.0,
                           teardown_cpu_seconds=0.0)
    processes = [
        sim.spawn(model.run_job(sim, vm, JobSpec(run_seconds=60.0)))
        for vm in node.vms
    ]
    sim.run()
    outcomes = [p.result for p in processes]
    # First VM sets up in 3 s (ok); second waits 3 s then works 3 s = 6 s > 4 s.
    assert outcomes[0].ok
    assert not outcomes[1].ok


def test_disk_contention_affects_dual_core_nodes():
    """Dual cores do not help when the single disk arm is the bottleneck."""
    sim = Simulator()
    node = PhysicalNode(sim, "n0", cores=2, vm_count=2)
    model = cpu_only_model(setup_cpu_seconds=0.1, setup_disk_seconds=3.0,
                           timeout_seconds=4.0, teardown_cpu_seconds=0.0)
    processes = [
        sim.spawn(model.run_job(sim, vm, JobSpec(run_seconds=60.0)))
        for vm in node.vms
    ]
    sim.run()
    outcomes = [p.result for p in processes]
    # CPU phases run in parallel, but disk serialises: 0.1+3 vs 0.1+3+3.
    assert outcomes[0].ok
    assert not outcomes[1].ok


def test_dual_core_node_avoids_cpu_contention():
    sim = Simulator()
    node = PhysicalNode(sim, "n0", cores=2, vm_count=2)
    model = cpu_only_model(setup_cpu_seconds=3.0, timeout_seconds=4.0,
                           teardown_cpu_seconds=0.0)
    processes = [
        sim.spawn(model.run_job(sim, vm, JobSpec(run_seconds=1.0)))
        for vm in node.vms
    ]
    sim.run()
    assert all(p.result.ok for p in processes)


def test_heavy_tail_inflates_some_setups():
    """With tail probability 1 every setup pays the multiplier."""
    model = cpu_only_model(setup_disk_seconds=1.0, heavy_tail_prob=1.0,
                           heavy_tail_factor=5.0, teardown_cpu_seconds=0.0)
    sim, _, outcome = run_one(model, JobSpec(run_seconds=1.0))
    assert outcome.ok
    # setup 1.0 cpu + 5.0 disk + run 1.0
    assert sim.now == pytest.approx(7.0)


def test_vm_state_transitions_during_run():
    sim = Simulator()
    node = PhysicalNode(sim, "n0", cores=1, vm_count=1)
    vm = node.vms[0]
    model = cpu_only_model(setup_cpu_seconds=2.0, teardown_cpu_seconds=1.0)
    sim.spawn(model.run_job(sim, vm, JobSpec(run_seconds=10.0)))
    sim.run(until=1.0)
    assert vm.state == VmState.CLAIMING
    sim.run(until=5.0)
    assert vm.state == VmState.BUSY
    sim.run()
    assert vm.state == VmState.IDLE


def test_jitter_is_deterministic_per_seed():
    model = ExecutionModel(setup_cpu_seconds=1.0, jitter_fraction=0.5,
                           setup_disk_seconds=0.0, teardown_disk_seconds=0.0,
                           teardown_cpu_seconds=0.0, timeout_seconds=100.0,
                           heavy_tail_prob=0.0)

    def total_time(seed):
        sim = Simulator(seed=seed)
        node = PhysicalNode(sim, "n0", cores=1, vm_count=1)
        sim.spawn(model.run_job(sim, node.vms[0], JobSpec(run_seconds=1.0)))
        sim.run()
        return sim.now

    assert total_time(1) == total_time(1)
    assert total_time(1) != total_time(2)


def test_reliable_execution_never_drops():
    sim = Simulator()
    node = PhysicalNode(sim, "n0", cores=1, vm_count=4)
    processes = [
        sim.spawn(RELIABLE_EXECUTION.run_job(sim, vm, JobSpec(run_seconds=1.0)))
        for vm in node.vms
    ]
    sim.run()
    assert all(p.result.ok for p in processes)


def test_outcome_carries_identifiers():
    model = RELIABLE_EXECUTION
    job = JobSpec(run_seconds=2.0)
    _, vm, outcome = run_one(model, job)
    assert outcome.job_id == job.job_id
    assert outcome.vm_id == vm.vm_id
    assert outcome.end_time > outcome.start_time
