"""Unit tests for the physical/virtual machine model."""

import pytest

from repro.cluster import PhysicalNode, VmState
from repro.sim import Simulator


def make_node(**kwargs):
    sim = Simulator()
    defaults = dict(cores=2, speed=1.0, memory_mb=512.0, vm_count=4)
    defaults.update(kwargs)
    return PhysicalNode(sim, "node000", **defaults)


def test_node_creates_requested_vms():
    node = make_node(vm_count=4)
    assert node.vm_count == 4
    assert len(node.vms) == 4


def test_vm_ids_are_slot_names():
    node = make_node(vm_count=2)
    assert node.vms[0].vm_id == "vm0@node000"
    assert node.vms[1].vm_id == "vm1@node000"
    assert node.vms[0].name == node.vms[0].vm_id


def test_vms_start_idle():
    node = make_node()
    assert all(vm.state == VmState.IDLE for vm in node.vms)
    assert len(node.idle_vms()) == node.vm_count


def test_idle_vms_excludes_busy():
    node = make_node()
    node.vms[0].state = VmState.BUSY
    node.vms[1].state = VmState.CLAIMING
    assert len(node.idle_vms()) == 2


def test_zero_vms_rejected():
    with pytest.raises(ValueError):
        make_node(vm_count=0)


def test_dropped_any_tracks_vm_counters():
    node = make_node()
    assert not node.dropped_any()
    node.vms[2].jobs_dropped = 1
    assert node.dropped_any()


def test_describe_reports_reboot_invariant_attributes():
    node = make_node(cores=2, memory_mb=256.0)
    description = node.describe()
    assert description["name"] == "node000"
    assert description["arch"] == "INTEL"
    assert description["opsys"] == "LINUX"
    assert description["cores"] == 2
    assert description["memory_mb"] == 256.0
    assert description["vm_count"] == 4


def test_cores_property_reflects_host():
    assert make_node(cores=1).cores == 1
    assert make_node(cores=2).cores == 2
