"""Unit tests for cluster construction."""

import pytest

from repro.cluster import (
    ClusterSpec,
    all_vms,
    build_cluster,
    large_cluster_testbed,
    mixed_workload_testbed,
    throughput_testbed,
)
from repro.sim import Simulator


def test_build_cluster_node_and_vm_counts():
    sim = Simulator()
    spec = ClusterSpec(physical_nodes=10, vms_per_node=3)
    nodes = build_cluster(sim, spec)
    assert len(nodes) == 10
    assert all(node.vm_count == 3 for node in nodes)
    assert len(list(all_vms(nodes))) == 30


def test_total_vms_matches_spec():
    assert ClusterSpec(physical_nodes=45, vms_per_node=4).total_vms() == 180


def test_core_mix_respects_fraction_roughly():
    sim = Simulator(seed=3)
    spec = ClusterSpec(physical_nodes=200, vms_per_node=1, dual_core_fraction=0.4)
    nodes = build_cluster(sim, spec)
    dual = sum(1 for node in nodes if node.cores == 2)
    assert 0.25 <= dual / len(nodes) <= 0.55


def test_all_single_core_when_fraction_zero():
    sim = Simulator()
    nodes = build_cluster(sim, ClusterSpec(physical_nodes=20, vms_per_node=1,
                                           dual_core_fraction=0.0))
    assert all(node.cores == 1 for node in nodes)


def test_speed_jitter_bounded():
    sim = Simulator()
    spec = ClusterSpec(physical_nodes=50, vms_per_node=1,
                       base_speed=1.0, speed_jitter=0.15)
    nodes = build_cluster(sim, spec)
    assert all(0.85 <= node.host.speed <= 1.15 for node in nodes)


def test_no_jitter_means_exact_speed():
    sim = Simulator()
    nodes = build_cluster(sim, ClusterSpec(physical_nodes=5, vms_per_node=1,
                                           speed_jitter=0.0, base_speed=2.0))
    assert all(node.host.speed == 2.0 for node in nodes)


def test_deterministic_given_seed():
    def fingerprint(seed):
        sim = Simulator(seed=seed)
        nodes = build_cluster(sim, ClusterSpec(physical_nodes=30, vms_per_node=1))
        return [(node.cores, round(node.host.speed, 9)) for node in nodes]

    assert fingerprint(7) == fingerprint(7)
    assert fingerprint(7) != fingerprint(8)


def test_paper_testbeds_match_section_5():
    assert throughput_testbed().total_vms() == 180
    assert large_cluster_testbed().total_vms() == 10000
    assert mixed_workload_testbed().total_vms() == 540


def test_node_names_are_unique():
    sim = Simulator()
    nodes = build_cluster(sim, ClusterSpec(physical_nodes=25, vms_per_node=2))
    names = {node.name for node in nodes}
    assert len(names) == 25
