"""Unit tests for experiment result records."""

from repro.metrics import ExperimentResult, ShapeCheck


def make_result():
    result = ExperimentResult("fig00", "Example", params={"nodes": 45})
    result.rows.append({"metric": "rate", "value": 4.5})
    return result


def test_add_check_and_all_pass():
    result = make_result()
    result.add_check("knee", "~1800", "1750", True)
    result.add_check("saturates", "yes", "yes", True)
    assert result.all_checks_pass()
    assert result.failed_checks() == []


def test_failed_checks_reported():
    result = make_result()
    result.add_check("ok-one", "x", "x", True)
    result.add_check("bad-one", "y", "z", False)
    assert not result.all_checks_pass()
    assert [c.name for c in result.failed_checks()] == ["bad-one"]


def test_check_row_rendering():
    check = ShapeCheck("n", "e", "m", True)
    assert check.row() == ("n", "e", "m", "PASS")
    assert ShapeCheck("n", "e", "m", False).row()[-1] == "FAIL"


def test_summary_contains_sections():
    result = make_result()
    result.add_check("c", "paper-says", "we-got", True)
    result.notes.append("a caveat")
    text = result.summary()
    assert "fig00" in text
    assert "nodes" in text
    assert "rate" in text
    assert "paper-says" in text
    assert "note: a caveat" in text


def test_summary_without_optional_sections():
    result = ExperimentResult("fig01", "Bare")
    text = result.summary()
    assert "fig01" in text


def test_checks_coerce_truthiness():
    result = make_result()
    result.add_check("coerced", "e", "m", 1)
    assert result.checks[-1].ok is True
