"""Unit tests for text rendering helpers."""

import pytest

from repro.metrics import ascii_bars, ascii_chart, ascii_table, fraction_percent


def test_table_alignment_and_rule():
    text = ascii_table(["name", "value"], [["a", 1], ["long-name", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert "long-name" in lines[3]


def test_table_title():
    text = ascii_table(["h"], [["x"]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_table_float_formatting():
    text = ascii_table(["v"], [[1.5], [2.0]])
    cells = [line.strip() for line in text.splitlines()[2:]]
    assert cells == ["1.5", "2"]  # trailing zeros stripped


def test_chart_empty_series():
    assert "(empty series)" in ascii_chart([], title="t")


def test_chart_contains_extent_labels():
    series = [(0.0, 0.0), (10.0, 100.0)]
    text = ascii_chart(series, width=20, height=5, title="T")
    assert "T" in text
    assert "100.00" in text
    assert "0.00" in text
    assert "*" in text


def test_chart_flat_series_does_not_crash():
    text = ascii_chart([(0.0, 5.0), (1.0, 5.0)], width=10, height=4)
    assert "*" in text


def test_chart_single_point():
    text = ascii_chart([(3.0, 7.0)], width=10, height=4)
    assert "*" in text


def test_bars_render_proportionally():
    text = ascii_bars(["a", "b"], [1.0, 2.0], width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10


def test_bars_zero_values():
    text = ascii_bars(["a"], [0.0])
    assert "a" in text


def test_bars_empty():
    assert "(no data)" in ascii_bars([], [], title="x")


def test_bars_length_mismatch_raises():
    with pytest.raises(ValueError):
        ascii_bars(["a"], [1.0, 2.0])


def test_fraction_percent():
    assert fraction_percent(0.4) == "40.0%"
    assert fraction_percent(1.0) == "100.0%"
