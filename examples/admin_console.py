#!/usr/bin/env python3
"""Administrator's tour: configuration, history and failure handling.

Shows the operational side the paper argues for: policies with audit
history and point-in-time reconstruction, machine boot history, missing-
machine detection, and the transactional no-lost-jobs guarantee when
execute nodes drop work.

Run:  python examples/admin_console.py
"""

from repro.cluster import ClusterSpec, ExecutionModel
from repro.condorj2 import CondorJ2System
from repro.workload import fixed_length_batch


def main() -> None:
    # An unreliable cluster: aggressive timeout so some starts drop.
    flaky = ExecutionModel(
        setup_cpu_seconds=0.3,
        setup_disk_seconds=0.6,
        timeout_seconds=1.2,
        jitter_fraction=0.6,
        heavy_tail_prob=0.15,
        heavy_tail_factor=4.0,
    )
    system = CondorJ2System(
        ClusterSpec(physical_nodes=3, vms_per_node=2),
        seed=21,
        execution=flaky,
    )
    config = system.cas.config
    system.start()

    # 1. Configuration management with history.
    system.sim.run(until=10.0)
    config.set("scheduling_interval_seconds", "0.5", system.sim.now, "admin")
    system.sim.run(until=20.0)
    config.set("scheduling_interval_seconds", "2.0", system.sim.now, "admin")
    print("policy history for scheduling_interval_seconds:")
    for change in config.history("scheduling_interval_seconds"):
        print(f"  t={change['changed_at']:6.1f}  "
              f"{change['old_value']} -> {change['new_value']} "
              f"(by {change['changed_by']})")
    print("value in force at t=15:",
          config.value_at("scheduling_interval_seconds", 15.0), "\n")

    # 2. Run a workload on the flaky cluster.
    jobs = fixed_length_batch(30, run_seconds=45.0, owner="ops")
    system.submit_at(20.0, jobs)
    system.run_until_complete(expected_jobs=30, max_seconds=7200.0)

    drops = system.drop_stats()
    print(f"drops observed: {drops['drop_events']} "
          f"(on {drops['vms_dropping']} VMs / {drops['nodes_dropping']} nodes)")
    print(f"jobs completed despite drops: {system.completed_count()}/30 "
          "- the transactional queue never loses a job\n")

    # 3. Machine boot history (recorded at registration).
    reports = system.cas.reports
    boots = reports.machine_boot_records(system.nodes[0].name)
    print(f"boot history for {system.nodes[0].name}: "
          f"{[(b['booted_at'], b['cores']) for b in boots]}")

    # 4. Missing-machine sweep: stop one startd and let the server notice.
    victim = system.startds[0]
    victim.stop()
    system.sim.run(until=system.sim.now + 1000.0)
    marked = system.cas.heartbeat.mark_missing_machines(
        system.sim.now, timeout_seconds=900.0
    )
    print(f"\nmissing-machine sweep marked {marked} machine(s) missing")
    print(system.cas.site.pool_page())

    # 5. Per-operation web-service statistics: the gateway meter shows
    # calls, fault rates and latency for every contract-dispatched op
    # (acceptMatch/beginExecute arrive in multiplexed batch envelopes).
    print()
    print(system.cas.site.statistics_page())


if __name__ == "__main__":
    main()
