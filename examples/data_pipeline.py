#!/usr/bin/env python3
"""A two-stage scientific pipeline with data sets and provenance.

This exercises the paper's section 6 future-work features end to end:

* a dependency workflow (stage-1 jobs feed stage-2 jobs, section 5.1.3);
* data-set registration with k-safe replication;
* provenance records answering "what produced this output?".

Run:  python examples/data_pipeline.py
"""

from repro.cluster import ClusterSpec, RELIABLE_EXECUTION
from repro.condorj2 import CondorJ2System
from repro.condorj2.datamgmt import DatasetService
from repro.condorj2.provenance import ProvenanceService
from repro.workload import two_stage_workflow


def main() -> None:
    system = CondorJ2System(
        ClusterSpec(physical_nodes=6, vms_per_node=2),
        seed=3,
        execution=RELIABLE_EXECUTION,
    )
    datasets = DatasetService(system.cas.container, default_k=2)
    provenance = ProvenanceService(system.cas.container)

    # A 16 -> 4 two-stage workflow: stage-1 outputs feed stage-2 inputs.
    workflow = two_stage_workflow(stage1_count=16, stage2_count=4,
                                  stage1_seconds=30.0, stage2_seconds=120.0,
                                  fan_in=4, owner="science")
    system.submit_at(0.0, workflow.jobs)
    system.run_until_complete(expected_jobs=len(workflow.jobs),
                              max_seconds=7200.0)
    print(f"pipeline of {len(workflow.jobs)} jobs completed "
          f"at t={system.sim.now:.0f}s (dependencies honoured by the "
          "set-oriented scheduler)\n")

    # Register stage outputs as managed data sets and record provenance.
    now = system.sim.now
    machines = [node.name for node in system.nodes]
    for job in workflow.jobs:
        for output in job.output_files:
            dataset_id = datasets.register_dataset(
                output, "science", size_mb=64.0, now=now
            )
            datasets.add_replica(dataset_id, machines[dataset_id % len(machines)], now)
            provenance.record(
                output, job.job_id, job.cmd, now,
                executable_version="v1.3",
                inputs=job.input_files,
            )
    for index, job in enumerate(j for j in workflow.jobs if j.depends_on):
        provenance.record(
            f"final.{index}.result", job.job_id, job.cmd, now,
            executable_version="v1.3", inputs=job.input_files,
        )

    # k-safety: every data set wants 2 replicas but has 1.
    plan = datasets.repair_plan(machines)
    print(f"k-safety repair plan: {len(plan)} transfers needed "
          f"(k=2, one replica each); first: {plan[0] if plan else None}\n")

    # Provenance: the paper's motivating question, answered by a query.
    question = "final.0.result"
    derivation = provenance.derivation_of(question)
    print(f"what produced {question!r}?")
    print(f"  executable {derivation['executable']} "
          f"{derivation['executable_version']} (job {derivation['job_id']})")
    print(f"  from inputs {derivation['inputs']}")
    lineage = provenance.lineage(question)
    print(f"  full lineage: {len(lineage)} derivation records")


if __name__ == "__main__":
    main()
