#!/usr/bin/env python3
"""Quickstart: stand up a CondorJ2 pool, run a workload, query everything.

This is the paper's pitch in fifty lines: submit jobs through a web
service, watch execute nodes pull them via heartbeats, and then answer
operational questions with plain reports — because all the state lives in
a database.

Run:  python examples/quickstart.py
"""

from repro.cluster import ClusterSpec, RELIABLE_EXECUTION
from repro.condorj2 import CondorJ2System
from repro.workload import fixed_length_batch


def main() -> None:
    # A small pool: 4 physical machines x 2 VMs = 8 slots.
    system = CondorJ2System(
        ClusterSpec(physical_nodes=4, vms_per_node=2),
        seed=7,
        execution=RELIABLE_EXECUTION,
    )

    # Submit 24 one-minute jobs as the user "alice" (via the submitJobs
    # web service — step 1 of the paper's Table 2).
    jobs = fixed_length_batch(24, run_seconds=60.0, owner="alice")
    system.submit_at(0.0, jobs)

    # Run the simulated pool until the workload completes.
    makespan = system.run_until_complete(expected_jobs=24, max_seconds=3600.0)
    print(f"24 jobs on 8 VMs completed at t={makespan:.1f}s "
          f"(optimal {24 * 60 / 8:.0f}s of execution)\n")

    # Everything is queryable: these pages render from the same logic
    # layer the SOAP services use.
    site = system.cas.site
    print(site.queue_page(), "\n")
    print(site.pool_page(), "\n")
    print(site.user_page("alice"), "\n")
    print(site.accounting_page(), "\n")

    # And the raw SQL surface is right there too.
    rate_by_minute = system.cas.reports.throughput_by_minute()
    print("completions per minute:",
          {row["minute"]: row["n"] for row in rate_by_minute})


if __name__ == "__main__":
    main()
