#!/usr/bin/env python3
"""Head-to-head: the mixed workload on Condor vs CondorJ2.

A scaled-down version of the paper's sections 5.2.3 / 5.3.3 experiment:
the same 4:1 mix of one-minute and six-minute jobs on the same cluster,
scheduled by the process-centric baseline (three throttled schedds) and
by the data-centric system.  The output shows the shapes the paper
reports: CondorJ2 finishes near the optimal makespan by brute force,
while unlimited Condor schedds drain one at a time and take ~2x longer.

Run:  python examples/mixed_workload_comparison.py
"""

from repro.cluster import ClusterSpec, RELIABLE_EXECUTION
from repro.condor import CondorConfig, CondorPool
from repro.condorj2 import CondorJ2System
from repro.metrics import ascii_chart
from repro.sim.monitor import in_progress_series
from repro.workload import mixed_batch, optimal_makespan_seconds

CLUSTER = ClusterSpec(physical_nodes=15, vms_per_node=4)  # 60 VMs
SHORT, LONG = 720, 180  # 4:1 mix, 1,800 total minutes, 2-min average


def run_condorj2() -> float:
    system = CondorJ2System(CLUSTER, seed=11, execution=RELIABLE_EXECUTION)
    system.submit_at(0.0, mixed_batch(SHORT, LONG))
    system.run_until_complete(expected_jobs=SHORT + LONG, max_seconds=14400.0)
    ends = system.completion_times()
    series = in_progress_series(system.start_times(), ends)
    print(ascii_chart([(float(m), float(n)) for m, n in series],
                      title="CondorJ2: jobs in progress vs minute",
                      width=60, height=10))
    return max(ends) / 60.0


def run_condor() -> float:
    config = CondorConfig(job_throttle_per_second=1.0)
    pool = CondorPool(CLUSTER, seed=11, schedd_count=3, config=config,
                      execution=RELIABLE_EXECUTION)
    pool.submit_round_robin(0.0, mixed_batch(SHORT, LONG))
    pool.run_until_complete(expected_jobs=SHORT + LONG, max_seconds=14400.0)
    ends = pool.completion_times()
    series = in_progress_series(pool.start_times(), ends)
    print(ascii_chart([(float(m), float(n)) for m, n in series],
                      title="Condor (3 schedds, no limit): jobs in progress",
                      width=60, height=10))
    return max(ends) / 60.0


def main() -> None:
    optimal = optimal_makespan_seconds(mixed_batch(SHORT, LONG), 60) / 60.0
    print(f"workload: {SHORT} x 1-min + {LONG} x 6-min jobs on 60 VMs; "
          f"optimal makespan {optimal:.0f} minutes\n")
    j2 = run_condorj2()
    print()
    condor = run_condor()
    print()
    print(f"CondorJ2 makespan: {j2:6.1f} minutes "
          f"({j2 / optimal:.2f}x optimal)")
    print(f"Condor makespan:   {condor:6.1f} minutes "
          f"({condor / optimal:.2f}x optimal)")
    print("\nThe data-centric system wins not with a cleverer scheduling "
          "algorithm\nbut by having no per-schedd bottleneck to work around.")


if __name__ == "__main__":
    main()
