"""Micro-bench: N single-op round-trips vs one N-op batch envelope.

Zhou et al. make per-message overhead the scaling bottleneck of large
virtualized pools; the multiplexed batch envelope exists to amortise it.
This bench drives the same N ``submitJob`` operations through the CAS
both ways — N single-op envelopes in sequence, then one batch envelope —
and compares

* **simulated time to completion** (transport latency + per-envelope
  parse/encode are paid once instead of N times), and
* **envelope count** at the server (N vs 1),

while asserting the *data* outcome is identical: N job tuples either
way, and the cost model still charges N validated dispatches.
"""

import pytest

from repro.cluster import ClusterSpec, RELIABLE_EXECUTION
from repro.condorj2 import CondorJ2System

BATCH_SIZES = (10, 50)


def _fresh_system(seed=3):
    system = CondorJ2System(
        cluster=ClusterSpec(physical_nodes=1, vms_per_node=1,
                            dual_core_fraction=0.0, speed_jitter=0.0),
        seed=seed,
        execution=RELIABLE_EXECUTION,
    )
    system.start()
    # Run past the CAS startup burst so the measurement window is clean.
    system.sim.run(until=120.0)
    return system


def _job_payloads(n):
    return [("submitJob", {"owner": f"user{i % 7}", "run_seconds": 3600.0})
            for i in range(n)]


def _drive(system, coroutine):
    """Run one client coroutine to completion; returns simulated seconds."""
    started = system.sim.now
    process = system.sim.spawn(coroutine)
    while not process.done and system.sim.step():
        pass
    assert process.done, "client coroutine never completed"
    assert process.error is None, process.error
    return system.sim.now - started, process.result


def _single_op_sequence(system, calls):
    results = []
    for operation, payload in calls:
        results.append((yield from system.user.call(operation, payload)))
    return results


@pytest.mark.parametrize("n", BATCH_SIZES)
def test_batch_envelope_beats_single_op_round_trips(benchmark, n):
    calls = _job_payloads(n)

    singles = _fresh_system(seed=3)
    envelopes_before = singles.cas.requests_handled
    seconds_single, results_single = _drive(
        singles, _single_op_sequence(singles, calls)
    )
    single_envelopes = singles.cas.requests_handled - envelopes_before
    assert single_envelopes == n
    assert all(result["status"] == "OK" for result in results_single)

    batched = _fresh_system(seed=3)
    envelopes_before = batched.cas.requests_handled

    def run_batch():
        return _drive(batched, batched.user.call_batch(calls))

    seconds_batch, results_batch = benchmark.pedantic(
        run_batch, rounds=1, iterations=1
    )
    batch_envelopes = batched.cas.requests_handled - envelopes_before
    assert batch_envelopes == 1
    assert all(result["status"] == "OK" for result in results_batch)

    # Identical data outcome either way.
    assert singles.cas.db.table_count("jobs") == n
    assert batched.cas.db.table_count("jobs") == n
    # All N dispatches were validated and metered in both modes.
    assert singles.cas.gateway.stats["submitJob"].calls == n
    assert batched.cas.gateway.stats["submitJob"].calls == n

    speedup = seconds_single / seconds_batch
    print(f"\nn={n}: {single_envelopes} envelopes in "
          f"{seconds_single * 1e3:.1f} simulated ms vs "
          f"{batch_envelopes} envelope in {seconds_batch * 1e3:.1f} ms "
          f"({speedup:.1f}x)")
    # One transport instead of N must win on simulated wall-clock.
    assert seconds_batch < seconds_single
