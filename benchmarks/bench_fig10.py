"""Bench for Figure 10: CAS CPU in a 10,000-VM cluster over 8 hours."""

from repro.experiments.fig10_large_cluster import run


def test_fig10_large_cluster(experiment):
    experiment(run)
