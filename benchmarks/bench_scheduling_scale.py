"""Macro-bench: the scheduling pass is O(1) statements in queue length.

The paper's scalability claim, measured directly: one set-oriented
scheduling pass over a 1,000-job queue and over a 50,000-job queue must
execute the *same number of SQL statements* — the work is pushed into
the database's indexed access paths, not a Python loop.  The bench also
records wall-clock per pass so regressions in the set-oriented plan
(e.g. a lost index) show up as timing collapse at the deep end, and runs
a sqlite-vs-memory backend comparison so the second `StorageEngine`
implementation is held to the same statement-count contract (and its
interpreter overhead is visible as a wall-clock ratio, not a guess).
"""

import time

import pytest

from repro.cluster import JobSpec
from repro.condorj2.beans import BeanContainer
from repro.condorj2.database import Database
from repro.condorj2.logic import (
    HeartbeatService,
    LifecycleService,
    SchedulingService,
    SubmissionService,
)

QUEUE_DEPTHS = (1_000, 10_000, 50_000)
VM_COUNT = 64
BACKENDS = ("sqlite", "memory")


def _pool_with_queue(n_jobs, backend=None):
    container = BeanContainer(Database(backend=backend))
    submission = SubmissionService(container)
    scheduling = SchedulingService(container)
    lifecycle = LifecycleService(container)
    heartbeat = HeartbeatService(container, scheduling, lifecycle)
    for m in range(VM_COUNT // 8):
        heartbeat.register_machine({"name": f"m{m:03d}", "vm_count": 8}, 0.0)
    specs = [JobSpec(owner=f"user{i % 13}") for i in range(n_jobs)]
    submission.submit_jobs(specs, now=0.0)
    return container, scheduling


def _pass_statements(container, scheduling, now):
    before = container.db.counts.snapshot()
    created = scheduling.run_pass(now)
    delta = container.db.counts.delta(before)
    return created, delta.statements, delta.commits


def test_scheduling_pass_statement_count_flat_1k_to_50k(benchmark):
    """Statement count per pass is identical at every queue depth."""
    observations = {}
    pools = {depth: _pool_with_queue(depth) for depth in QUEUE_DEPTHS}

    def run_passes():
        for depth, (container, scheduling) in pools.items():
            observations[depth] = _pass_statements(
                container, scheduling, now=float(scheduling.passes + 1)
            )

    benchmark.pedantic(run_passes, rounds=1, iterations=1)

    print()
    for depth, (created, statements, commits) in sorted(observations.items()):
        print(
            f"queue={depth:>6}: {created} matches, "
            f"{statements} statements, {commits} commits"
        )
    counts = {
        (statements, commits)
        for _, statements, commits in observations.values()
    }
    assert len(counts) == 1, (
        f"statement count varies with queue length: {observations}"
    )
    statements, commits = counts.pop()
    assert statements == 2  # one INSERT..SELECT, one set UPDATE
    assert commits == 1
    assert all(created == VM_COUNT for created, _, _ in observations.values())


@pytest.mark.parametrize("depth", QUEUE_DEPTHS)
def test_scheduling_pass_wall_clock_by_depth(benchmark, depth):
    """Per-depth timing: the pass must not collapse at 50k queued jobs."""
    container, scheduling = _pool_with_queue(depth)

    def one_pass():
        # Matches accumulate across rounds; VMs saturate after the first
        # pass, so later passes measure the pure no-capacity probe.
        return scheduling.run_pass(now=float(scheduling.passes + 1))

    benchmark.pedantic(one_pass, rounds=3, iterations=1, warmup_rounds=1)


def test_scheduling_pass_backend_comparison(benchmark):
    """sqlite vs memory on the same workload: identical statement counts
    and matches, with per-backend wall-clock reported side by side."""
    depth = 10_000
    observations = {}

    def run_backends():
        for backend in BACKENDS:
            container, scheduling = _pool_with_queue(depth, backend=backend)
            start = time.perf_counter()
            created, statements, commits = _pass_statements(
                container, scheduling, now=1.0
            )
            elapsed = time.perf_counter() - start
            observations[backend] = (created, statements, commits, elapsed)

    benchmark.pedantic(run_backends, rounds=1, iterations=1)

    print()
    baseline = observations[BACKENDS[0]][3]
    for backend in BACKENDS:
        created, statements, commits, elapsed = observations[backend]
        ratio = elapsed / baseline if baseline else float("inf")
        print(
            f"backend={backend:>7}: {created} matches, "
            f"{statements} statements, {commits} commits, "
            f"{elapsed * 1e3:7.2f} ms/pass ({ratio:5.2f}x sqlite)"
        )
    shapes = {
        (created, statements, commits)
        for created, statements, commits, _ in observations.values()
    }
    assert shapes == {(VM_COUNT, 2, 1)}, (
        f"backends disagree on the pass contract: {observations}"
    )
