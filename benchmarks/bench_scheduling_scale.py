"""Macro-bench: the scheduling pass is O(1) statements in queue length.

The paper's scalability claim, measured directly: one set-oriented
scheduling pass over a 1,000-job queue and over a 50,000-job queue must
execute the *same number of SQL statements* — the work is pushed into
the database's indexed access paths, not a Python loop.  The bench also
records wall-clock per pass so regressions in the set-oriented plan
(e.g. a lost index) show up as timing collapse at the deep end, and runs
a sqlite-vs-memory backend comparison so the second `StorageEngine`
implementation is held to the same statement-count contract (and its
interpreter overhead is visible as a wall-clock ratio, not a guess).

Cold and warm passes are measured separately.  A *cold* pass is the
first scheduling pass on a fresh pool: it compiles every plan
cache-cold and does the real matchmaking work (all VMs are free).  A
*warm* pass runs after an explicit warmup phase: plans come from the
compiled-plan cache and the VMs are saturated, so it measures the pure
no-capacity probe.  Mixing the two was the old skew — cold compile time
was amortized into per-pass figures it does not belong to.

Results are also written machine-readably to ``BENCH_scheduling.json``
at the repo root (per-engine µs/pass at every depth plus plan-cache hit
rates); CI uploads it as an artifact and a separate smoke job pins the
memory/sqlite cold-pass ratio at 10k jobs to ``PERF_RATIO_BUDGET``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.cluster import JobSpec
from repro.condorj2.beans import BeanContainer
from repro.condorj2.database import Database
from repro.condorj2.logic import (
    HeartbeatService,
    LifecycleService,
    SchedulingService,
    SubmissionService,
)

QUEUE_DEPTHS = (1_000, 10_000, 50_000)
VM_COUNT = 64
BACKENDS = ("sqlite", "memory")

#: Explicit warmup passes before warm timing starts (plan cache fully
#: primed, VMs saturated), and the number of timed warm passes averaged.
WARMUP_PASSES = 5
TIMED_WARM_PASSES = 10

#: CI budget for the memory engine: cold scheduling pass at 10k queued
#: jobs must stay within this multiple of SQLite (ISSUE 6 acceptance:
#: ≤2.5x, down from the 7.4x the planner work closed).  The perf-smoke
#: CI job fails beyond this; apply the `perf-override` PR label to land
#: a known, accepted regression (see .github/workflows/ci.yml).
PERF_RATIO_BUDGET = 2.5
PERF_RATIO_DEPTH = 10_000

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_scheduling.json"


def _pool_with_queue(n_jobs, backend=None):
    container = BeanContainer(Database(backend=backend))
    submission = SubmissionService(container)
    scheduling = SchedulingService(container)
    lifecycle = LifecycleService(container)
    heartbeat = HeartbeatService(container, scheduling, lifecycle)
    for m in range(VM_COUNT // 8):
        heartbeat.register_machine({"name": f"m{m:03d}", "vm_count": 8}, 0.0)
    specs = [JobSpec(owner=f"user{i % 13}") for i in range(n_jobs)]
    submission.submit_jobs(specs, now=0.0)
    return container, scheduling


def _pass_statements(container, scheduling, now):
    before = container.db.counts.snapshot()
    created = scheduling.run_pass(now)
    delta = container.db.counts.delta(before)
    return created, delta.statements, delta.commits


def test_scheduling_pass_statement_count_flat_1k_to_50k(benchmark):
    """Statement count per pass is identical at every queue depth."""
    observations = {}
    pools = {depth: _pool_with_queue(depth) for depth in QUEUE_DEPTHS}

    def run_passes():
        for depth, (container, scheduling) in pools.items():
            observations[depth] = _pass_statements(
                container, scheduling, now=float(scheduling.passes + 1)
            )

    benchmark.pedantic(run_passes, rounds=1, iterations=1)

    print()
    for depth, (created, statements, commits) in sorted(observations.items()):
        print(
            f"queue={depth:>6}: {created} matches, "
            f"{statements} statements, {commits} commits"
        )
    counts = {
        (statements, commits)
        for _, statements, commits in observations.values()
    }
    assert len(counts) == 1, (
        f"statement count varies with queue length: {observations}"
    )
    statements, commits = counts.pop()
    assert statements == 2  # one INSERT..SELECT, one set UPDATE
    assert commits == 1
    assert all(created == VM_COUNT for created, _, _ in observations.values())


@pytest.mark.parametrize("depth", QUEUE_DEPTHS)
def test_scheduling_pass_wall_clock_by_depth(benchmark, depth):
    """Per-depth warm timing: the pass must not collapse at 50k jobs.

    The explicit warmup phase runs the cold pass (plan compiles, real
    matchmaking) plus enough saturated passes to prime every cache, so
    the timed rounds measure only the steady-state no-capacity probe —
    cold-start cost is reported separately by the cold/warm split test.
    """
    container, scheduling = _pool_with_queue(depth)

    def one_pass():
        return scheduling.run_pass(now=float(scheduling.passes + 1))

    benchmark.pedantic(
        one_pass, rounds=3, iterations=1, warmup_rounds=WARMUP_PASSES
    )


def _measure_backend(backend, depth, cold_samples=3):
    """Cold/warm split for one backend at one queue depth.

    Cold: first scheduling pass on a fresh pool (empty plan cache, all
    VMs free — plan compiles plus the real 64-match work), minimum over
    ``cold_samples`` fresh pools.  Warm: after ``WARMUP_PASSES`` extra
    passes on the last pool, mean over ``TIMED_WARM_PASSES`` saturated
    passes.  Also reports the plan-cache hit rate over the whole run.
    """
    cold_seconds = []
    container = scheduling = None
    for _ in range(cold_samples):
        container, scheduling = _pool_with_queue(depth, backend=backend)
        start = time.perf_counter()
        created = scheduling.run_pass(now=1.0)
        cold_seconds.append(time.perf_counter() - start)
        assert created == VM_COUNT
    for _ in range(WARMUP_PASSES):
        scheduling.run_pass(now=float(scheduling.passes + 1))
    start = time.perf_counter()
    for _ in range(TIMED_WARM_PASSES):
        scheduling.run_pass(now=float(scheduling.passes + 1))
    warm_seconds = (time.perf_counter() - start) / TIMED_WARM_PASSES
    return {
        "backend": backend,
        "depth": depth,
        "cold_pass_us": round(min(cold_seconds) * 1e6, 1),
        "warm_pass_us": round(warm_seconds * 1e6, 1),
        "plan_cache_hit_rate": round(
            container.db.plan_cache.hit_rate(), 4
        ),
    }


def test_scheduling_cold_warm_split_and_json(benchmark):
    """Cold vs warm per-pass timing for both backends at every depth,
    reported separately and written to ``BENCH_scheduling.json``."""
    results = []

    def run_matrix():
        results.clear()
        for backend in BACKENDS:
            for depth in QUEUE_DEPTHS:
                # One cold sample at 50k keeps the bench affordable; the
                # pinned-ratio depth gets the full minimum-of-3.
                samples = 3 if depth <= PERF_RATIO_DEPTH else 1
                results.append(
                    _measure_backend(backend, depth, cold_samples=samples)
                )

    benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    print()
    for r in results:
        print(
            f"backend={r['backend']:>7} queue={r['depth']:>6}: "
            f"cold {r['cold_pass_us']:>10.1f} µs/pass, "
            f"warm {r['warm_pass_us']:>8.1f} µs/pass, "
            f"plan-cache hit rate {r['plan_cache_hit_rate']:.3f}"
        )
    payload = {
        "bench": "scheduling_pass",
        "vm_count": VM_COUNT,
        "queue_depths": list(QUEUE_DEPTHS),
        "warmup_passes": WARMUP_PASSES,
        "timed_warm_passes": TIMED_WARM_PASSES,
        "perf_ratio_budget": PERF_RATIO_BUDGET,
        "results": results,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")

    # Hit rates are a property of the shared admission path, so the two
    # backends must agree exactly at every depth.
    by_depth = {}
    for r in results:
        by_depth.setdefault(r["depth"], set()).add(r["plan_cache_hit_rate"])
    assert all(len(rates) == 1 for rates in by_depth.values()), by_depth


def test_memory_engine_within_perf_budget():
    """CI perf-regression smoke: the memory engine's cold scheduling
    pass at 10k queued jobs stays within ``PERF_RATIO_BUDGET``x SQLite.

    Run by the dedicated perf-smoke CI job; apply the `perf-override`
    PR label to skip the gate for a known, accepted regression.
    """
    sqlite = _measure_backend("sqlite", PERF_RATIO_DEPTH, cold_samples=3)
    memory = _measure_backend("memory", PERF_RATIO_DEPTH, cold_samples=3)
    ratio = memory["cold_pass_us"] / sqlite["cold_pass_us"]
    print(
        f"\ncold pass at {PERF_RATIO_DEPTH} jobs: "
        f"sqlite {sqlite['cold_pass_us']:.0f} µs, "
        f"memory {memory['cold_pass_us']:.0f} µs "
        f"({ratio:.2f}x, budget {PERF_RATIO_BUDGET}x)"
    )
    assert ratio <= PERF_RATIO_BUDGET, (
        f"memory engine regression: {ratio:.2f}x sqlite at "
        f"{PERF_RATIO_DEPTH} jobs exceeds the {PERF_RATIO_BUDGET}x budget "
        f"(sqlite {sqlite['cold_pass_us']:.0f} µs, "
        f"memory {memory['cold_pass_us']:.0f} µs)"
    )


def test_scheduling_pass_backend_comparison(benchmark):
    """sqlite vs memory on the same workload: identical statement counts
    and matches, with per-backend wall-clock reported side by side."""
    depth = 10_000
    observations = {}

    def run_backends():
        for backend in BACKENDS:
            container, scheduling = _pool_with_queue(depth, backend=backend)
            start = time.perf_counter()
            created, statements, commits = _pass_statements(
                container, scheduling, now=1.0
            )
            elapsed = time.perf_counter() - start
            observations[backend] = (created, statements, commits, elapsed)

    benchmark.pedantic(run_backends, rounds=1, iterations=1)

    print()
    baseline = observations[BACKENDS[0]][3]
    for backend in BACKENDS:
        created, statements, commits, elapsed = observations[backend]
        ratio = elapsed / baseline if baseline else float("inf")
        print(
            f"backend={backend:>7}: {created} matches, "
            f"{statements} statements, {commits} commits, "
            f"{elapsed * 1e3:7.2f} ms/pass ({ratio:5.2f}x sqlite)"
        )
    shapes = {
        (created, statements, commits)
        for created, statements, commits, _ in observations.values()
    }
    assert shapes == {(VM_COUNT, 2, 1)}, (
        f"backends disagree on the pass contract: {observations}"
    )
