"""Bench for Figure 7: CondorJ2 scheduling throughput vs job length."""

from repro.experiments.fig07_throughput import run


def test_fig07_scheduling_throughput(experiment):
    experiment(run)
