"""Bench for Figure 9: CAS CPU utilisation vs scheduling throughput."""

from repro.experiments.fig09_cpu_vs_rate import run


def test_fig09_cas_cpu_vs_rate(experiment):
    experiment(run)
