"""Macro-bench: WAL recovery time vs log length, commit cost vs fsync policy.

Two curves that characterize the durability tier:

* **Recovery scales with the un-checkpointed log suffix, not with
  database size.**  A directory holding N committed autocommit inserts
  is recovered (a) from a pure log — replay every record — and (b) right
  after a checkpoint — load the snapshot, replay nothing.  The (a) curve
  grows linearly in N; the (b) point stays flat, which is the whole
  argument for checkpointing.

* **The fsync policy is the commit-throughput knob.**  The same insert
  workload runs under ``commit`` (force every commit), ``interval``
  (every 8th — the group-commit precursor) and ``never``; wall-clock per
  commit and the priced IO charge (``CasCostModel.io_cost_seconds``)
  are reported side by side.  The priced charge is the one the
  simulation bills; wall-clock shows the engine-side bookkeeping
  overhead is modest even when every commit forces.

Results land machine-readably in ``BENCH_wal.json`` at the repo root;
CI uploads it as an artifact next to ``BENCH_scheduling.json``.
"""

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.condorj2.costs import CasCostModel
from repro.condorj2.storage import StatementCounts, WalStorageEngine
from repro.condorj2.storage.wal import FsyncPolicy

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_wal.json"

#: Committed autocommit inserts per recovery measurement.
LOG_LENGTHS = (500, 2_000, 8_000)
#: Commits per fsync-policy measurement.
POLICY_COMMITS = 4_000

_INSERT = "INSERT INTO users (user_name, created_at) VALUES (?, ?)"


def _populated_directory(n_rows, checkpoint):
    """A WAL directory holding ``n_rows`` committed inserts — as a pure
    log, or checkpointed with an empty live segment."""
    directory = tempfile.mkdtemp(prefix="condorj2-walbench-")
    engine = WalStorageEngine(
        directory,
        fsync_policy=FsyncPolicy(mode="never"),
        checkpoint_interval_bytes=1 << 40,  # rotation off: pure log
    )
    for index in range(n_rows):
        engine.execute(_INSERT, (f"user-{index:07d}", float(index)))
    if checkpoint:
        engine.checkpoint()
    engine.close()
    return directory


def _recover_once(directory):
    start = time.perf_counter()
    engine = WalStorageEngine(directory)
    elapsed = time.perf_counter() - start
    recovery = engine.last_recovery
    rows = engine.execute("SELECT COUNT(*) FROM users").fetchall()[0][0]
    engine.close()
    return elapsed, recovery, rows


def test_recovery_time_vs_log_length(benchmark):
    """Replay-time curve over log length, with the checkpointed flat
    point at the deepest length."""
    results = []

    def run_curve():
        results.clear()
        for n_rows in LOG_LENGTHS:
            directory = _populated_directory(n_rows, checkpoint=False)
            try:
                elapsed, recovery, rows = _recover_once(directory)
            finally:
                shutil.rmtree(directory, ignore_errors=True)
            assert rows == n_rows
            assert recovery.records_replayed == n_rows
            results.append({
                "mode": "log-replay",
                "rows": n_rows,
                "recovery_ms": round(elapsed * 1e3, 3),
                "records_replayed": recovery.records_replayed,
                "log_bytes": recovery.log_bytes_kept,
            })
        directory = _populated_directory(LOG_LENGTHS[-1], checkpoint=True)
        try:
            elapsed, recovery, rows = _recover_once(directory)
        finally:
            shutil.rmtree(directory, ignore_errors=True)
        assert rows == LOG_LENGTHS[-1]
        assert recovery.checkpoint_loaded
        assert recovery.records_replayed == 0
        results.append({
            "mode": "checkpoint",
            "rows": LOG_LENGTHS[-1],
            "recovery_ms": round(elapsed * 1e3, 3),
            "records_replayed": 0,
            "log_bytes": recovery.log_bytes_kept,
        })

    benchmark.pedantic(run_curve, rounds=1, iterations=1)

    print()
    for entry in results:
        print(
            f"{entry['mode']:>11} rows={entry['rows']:>6}: "
            f"{entry['recovery_ms']:>8.3f} ms recovery, "
            f"{entry['records_replayed']} records replayed"
        )
    # replaying the full log must cost more than loading the snapshot
    deepest = [e for e in results if e["rows"] == LOG_LENGTHS[-1]]
    replay = next(e for e in deepest if e["mode"] == "log-replay")
    snapshot = next(e for e in deepest if e["mode"] == "checkpoint")
    assert snapshot["records_replayed"] < replay["records_replayed"]
    _merge_json({"recovery": results})


def test_commit_overhead_vs_fsync_policy(benchmark):
    """Per-commit wall clock and priced IO under each fsync policy."""
    costs = CasCostModel()
    results = []

    def run_policies():
        results.clear()
        for policy in (FsyncPolicy(mode="commit"),
                       FsyncPolicy(mode="interval", interval=8),
                       FsyncPolicy(mode="never")):
            directory = tempfile.mkdtemp(prefix="condorj2-walbench-")
            engine = WalStorageEngine(
                directory, fsync_policy=policy,
                checkpoint_interval_bytes=1 << 40,
            )
            try:
                start = time.perf_counter()
                for index in range(POLICY_COMMITS):
                    engine.execute(_INSERT, (f"u{index:07d}", float(index)))
                elapsed = time.perf_counter() - start
                delta = engine.counts.delta(StatementCounts())
                results.append({
                    "fsync_mode": policy.mode,
                    "commits": POLICY_COMMITS,
                    "wall_us_per_commit": round(
                        elapsed / POLICY_COMMITS * 1e6, 3
                    ),
                    "fsyncs": delta.fsyncs,
                    "priced_io_seconds": round(
                        costs.io_cost_seconds(delta), 6
                    ),
                })
            finally:
                engine.close()
                shutil.rmtree(directory, ignore_errors=True)

    benchmark.pedantic(run_policies, rounds=1, iterations=1)

    print()
    for entry in results:
        print(
            f"fsync={entry['fsync_mode']:>8}: "
            f"{entry['wall_us_per_commit']:>8.3f} µs/commit wall, "
            f"{entry['fsyncs']:>5} forces, "
            f"priced IO {entry['priced_io_seconds']:.4f} s"
        )
    by_mode = {entry["fsync_mode"]: entry for entry in results}
    assert by_mode["commit"]["fsyncs"] == POLICY_COMMITS
    assert by_mode["interval"]["fsyncs"] == POLICY_COMMITS // 8
    assert by_mode["never"]["fsyncs"] == 0
    # the priced trade is strictly ordered: more forces, more IO charge
    assert (by_mode["commit"]["priced_io_seconds"]
            > by_mode["interval"]["priced_io_seconds"]
            > by_mode["never"]["priced_io_seconds"])
    _merge_json({"fsync_policy": results})


def _merge_json(section):
    """Accumulate sections into BENCH_wal.json (tests run in any order)."""
    payload = {"bench": "wal_recovery"}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except ValueError:
            pass
    payload.update(section)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_JSON.name}")
