"""Bench for section 4.2.3.1: the code-base size measurement harness."""

from repro.experiments.codebase import run


def test_sec4231_codebase_comparison(experiment):
    experiment(run)
