"""Bench for Figure 11: CondorJ2 mixed workload, jobs in progress."""

from repro.experiments.fig11_mixed_inprogress import run


def test_fig11_mixed_in_progress(experiment):
    experiment(run)
