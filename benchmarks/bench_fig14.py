"""Bench for Figure 14: Condor schedd CPU vs queue length."""

from repro.experiments.fig14_condor_cpu_vs_qlen import run


def test_fig14_condor_cpu_vs_queue(experiment):
    experiment(run)
