"""Bench for section 5.3.2: Condor fails at 5,000 running jobs."""

from repro.experiments.sec532_condor_large import run


def test_sec532_condor_large_cluster(experiment):
    experiment(run)
