"""Benches for Tables 1 and 2: the dataflow comparison."""

from repro.experiments.dataflow import run_tab01, run_tab02


def test_tab01_condor_dataflow(experiment):
    """Table 1: 15 steps, 10 channels, 7 entities."""
    experiment(run_tab01)


def test_tab02_condorj2_dataflow(experiment):
    """Table 2: 15 steps, 4 channels, 5 entities."""
    experiment(run_tab02)
