"""Bench for Figure 12: CondorJ2 mixed workload, turnover rate."""

from repro.experiments.fig12_mixed_turnover import run


def test_fig12_mixed_turnover(experiment):
    experiment(run)
