"""Bench for Figure 16: Condor mixed workload, schedd limit 60."""

from repro.experiments.fig16_condor_mixed_limited import run


def test_fig16_condor_mixed_limited(experiment):
    experiment(run)
