"""Bench for Figure 15: Condor mixed workload, no schedd limit."""

from repro.experiments.fig15_condor_mixed_nolimit import run


def test_fig15_condor_mixed_nolimit(experiment):
    experiment(run)
