"""Bench for Figure 13: Condor scheduling rate vs queue length."""

from repro.experiments.fig13_condor_rate_vs_qlen import run


def test_fig13_condor_rate_vs_queue(experiment):
    experiment(run)
