"""Benchmark harness configuration.

Each bench runs one paper experiment end to end inside pytest-benchmark
(pedantic mode, one round: these are macro-benchmarks of whole simulated
experiments, not micro-benchmarks) and prints the experiment summary —
the same rows and series the paper reports.
"""

import pytest


def run_experiment(benchmark, runner, **kwargs):
    """Run one experiment under the benchmark timer and print its report."""
    result = benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
    print()
    print(result.summary())
    assert result.all_checks_pass(), (
        "paper-shape checks failed: "
        + "; ".join(c.name for c in result.failed_checks())
    )
    return result


@pytest.fixture
def experiment(benchmark):
    """Fixture exposing the experiment runner helper."""
    def _run(runner, **kwargs):
        return run_experiment(benchmark, runner, **kwargs)
    return _run
