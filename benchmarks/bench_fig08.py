"""Bench for Figure 8: execute hosts failing to run jobs."""

from repro.experiments.fig08_drops import run


def test_fig08_execute_host_drops(experiment):
    experiment(run)
